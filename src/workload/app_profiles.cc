#include "workload/app_profiles.hh"

#include "common/logging.hh"

namespace stacknoc::workload {

const char *
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Server: return "SERVER";
      case Suite::Parsec: return "PARSEC";
      case Suite::Spec: return "SPEC2006";
      default: return "?";
    }
}

const std::vector<AppProfile> &
appTable()
{
    // Table 3 of the paper, verbatim. "Bursty: High" -> true.
    static const std::vector<AppProfile> table = {
        // Commercial / server workloads.
        {"tpcc", Suite::Server, 51.47, 6.06, 40.90, 10.57, true},
        {"sjas", Suite::Server, 41.54, 4.48, 35.06, 6.48, true},
        {"sap", Suite::Server, 29.91, 3.84, 23.57, 6.15, true},
        {"sjbb", Suite::Server, 25.52, 7.01, 19.42, 6.09, true},
        // PARSEC.
        {"streamcluster", Suite::Parsec, 29.28, 8.34, 15.23, 14.05, true},
        {"vips", Suite::Parsec, 13.51, 8.07, 6.61, 6.89, true},
        {"canneal", Suite::Parsec, 12.80, 5.47, 6.52, 6.27, false},
        {"dedup", Suite::Parsec, 12.80, 4.59, 7.42, 5.36, true},
        {"ferret", Suite::Parsec, 11.62, 9.16, 6.39, 5.22, false},
        {"facesim", Suite::Parsec, 10.62, 6.82, 6.15, 4.46, false},
        {"swaptions", Suite::Parsec, 5.47, 6.35, 2.46, 3.00, false},
        {"blackscholes", Suite::Parsec, 5.29, 3.73, 2.80, 2.48, false},
        {"bodytrack", Suite::Parsec, 5.62, 5.71, 2.81, 2.81, false},
        {"raytrace", Suite::Parsec, 5.65, 4.98, 3.62, 2.03, false},
        {"x264", Suite::Parsec, 4.17, 4.62, 1.87, 2.29, false},
        {"fluidanimate", Suite::Parsec, 4.89, 4.41, 2.68, 2.20, false},
        {"freqmine", Suite::Parsec, 2.29, 3.96, 1.31, 0.98, false},
        // SPEC 2006.
        {"gemsfdtd", Suite::Spec, 104.04, 94.62, 0.80, 103.23, false},
        {"mcf", Suite::Spec, 99.81, 64.47, 5.45, 94.37, false},
        {"soplex", Suite::Spec, 48.54, 16.88, 19.59, 28.95, false},
        {"cactus", Suite::Spec, 43.81, 15.64, 18.65, 25.16, false},
        {"lbm", Suite::Spec, 36.49, 18.88, 30.76, 5.73, true},
        {"hmmer", Suite::Spec, 34.36, 3.31, 12.50, 21.86, true},
        {"xalancbmk", Suite::Spec, 29.70, 21.07, 3.02, 26.68, false},
        {"leslie", Suite::Spec, 26.09, 18.06, 7.65, 18.45, false},
        {"sphinx", Suite::Spec, 25.55, 10.91, 0.97, 24.58, true},
        {"gobmk", Suite::Spec, 22.81, 8.68, 8.02, 14.79, true},
        {"astar", Suite::Spec, 20.03, 4.21, 6.11, 13.92, false},
        {"bzip2", Suite::Spec, 19.29, 10.02, 2.66, 16.63, true},
        {"milc", Suite::Spec, 19.12, 18.67, 0.05, 19.06, false},
        {"libquantum", Suite::Spec, 12.50, 12.50, 0.00, 12.50, false},
        {"omnetpp", Suite::Spec, 10.92, 10.15, 0.25, 10.67, false},
        {"povray", Suite::Spec, 9.63, 7.86, 0.88, 8.75, true},
        {"gcc", Suite::Spec, 9.39, 8.51, 0.06, 9.34, true},
        {"namd", Suite::Spec, 8.85, 5.11, 0.65, 8.19, true},
        {"gromacs", Suite::Spec, 5.36, 3.18, 0.32, 5.05, true},
        {"tonto", Suite::Spec, 5.26, 0.55, 3.52, 1.74, true},
        {"h264", Suite::Spec, 4.81, 2.74, 2.03, 2.78, true},
        {"dealII", Suite::Spec, 4.41, 2.36, 0.35, 4.06, true},
        {"sjeng", Suite::Spec, 3.93, 2.00, 0.92, 3.01, false},
        {"wrf", Suite::Spec, 1.80, 0.75, 0.88, 0.92, false},
        {"calculix", Suite::Spec, 0.33, 0.23, 0.03, 0.29, false},
    };
    return table;
}

const AppProfile &
findApp(const std::string &name)
{
    for (const AppProfile &app : appTable())
        if (app.name == name)
            return app;
    // Accept the paper's abbreviations as aliases.
    static const std::pair<const char *, const char *> aliases[] = {
        {"sclust", "streamcluster"}, {"bscls", "blackscholes"},
        {"bdtrk", "bodytrack"},      {"rtrce", "raytrace"},
        {"fldnmt", "fluidanimate"},  {"frqmn", "freqmine"},
        {"swptns", "swaptions"},     {"libqntm", "libquantum"},
        {"gems", "gemsfdtd"},        {"xalan", "xalancbmk"},
        {"omnet", "omnetpp"},        {"sphinx3", "sphinx"},
    };
    for (const auto &[alias, full] : aliases)
        if (name == alias)
            return findApp(full);
    fatal("unknown application '%s'", name.c_str());
}

std::vector<std::string>
appsOfSuite(Suite suite)
{
    std::vector<std::string> names;
    for (const AppProfile &app : appTable())
        if (app.suite == suite)
            names.push_back(app.name);
    return names;
}

} // namespace stacknoc::workload
