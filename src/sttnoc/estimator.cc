#include "sttnoc/estimator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sttnoc/rca_fabric.hh"

namespace stacknoc::sttnoc {

const char *
estimatorName(EstimatorKind kind)
{
    switch (kind) {
      case EstimatorKind::Simple: return "SS";
      case EstimatorKind::Rca: return "RCA";
      case EstimatorKind::Window: return "WB";
      default: return "?";
    }
}

WindowEstimator::WindowEstimator(const RegionMap &regions,
                                 const ParentMap &parents,
                                 const SttAwareParams &params)
    : regions_(regions), parents_(parents), params_(params),
      state_(static_cast<std::size_t>(regions.numBanks()))
{
}

Cycle
WindowEstimator::baseRtt(BankId child) const
{
    // Forward: parent switch -> child NI delivery takes 3 cycles per hop
    // plus 2 ejection cycles; the single-flit ACK back takes 3 + 3 per
    // hop. Hop count uses the real topology distance, so the formula also
    // holds for core-layer TSB parents (vertical hop included).
    const int dist = regions_.shape().hopDistance(
        parents_.parentOf(child), regions_.nodeOfBank(child));
    return static_cast<Cycle>(6 * dist + 5);
}

Cycle
WindowEstimator::estimate(BankId child, Cycle now)
{
    auto &st = state_[static_cast<std::size_t>(child)];
    if (st.probeOutstanding && now - st.sentAt > params_.probeTimeout)
        st.probeOutstanding = false;
    if (st.congestion > 0 &&
        now - st.updatedAt > params_.estimateStaleAfter) {
        st.congestion = 0; // stale sample: assume calm again
    }
    return st.congestion;
}

Cycle
WindowEstimator::peekEstimate(BankId child, Cycle now) const
{
    const auto &st = state_[static_cast<std::size_t>(child)];
    if (st.congestion > 0 &&
        now - st.updatedAt > params_.estimateStaleAfter) {
        return 0; // estimate() would expire this sample
    }
    return st.congestion;
}

void
WindowEstimator::onForward(BankId child, noc::Packet &pkt, NodeId parent,
                           Cycle now)
{
    auto &st = state_[static_cast<std::size_t>(child)];
    const bool tag = (st.forwarded % static_cast<std::uint64_t>(
                          params_.windowN)) == 0;
    ++st.forwarded;
    if (!tag || st.probeOutstanding)
        return;
    if (!noc::isRestrictedRequest(pkt.cls))
        return;
    st.probeOutstanding = true;
    st.stamp = static_cast<std::int16_t>(now & 0xff);
    st.sentAt = now;
    pkt.probeStamp = st.stamp;
    pkt.probeParent = parent;
}

void
WindowEstimator::onProbeAck(const noc::Packet &pkt, Cycle now)
{
    const BankId child = static_cast<BankId>(pkt.info.origin);
    if (child < 0 || child >= regions_.numBanks())
        return;
    auto &st = state_[static_cast<std::size_t>(child)];
    if (!st.probeOutstanding ||
        st.stamp != static_cast<std::int16_t>(pkt.info.aux)) {
        return;
    }
    st.probeOutstanding = false;
    const Cycle rtt = now - st.sentAt;
    const Cycle base = baseRtt(child);
    const Cycle excess = rtt > base ? (rtt - base) / 2 : 0;
    st.congestion = std::min(excess, params_.congestionCap);
    st.updatedAt = now;
}

RcaEstimator::RcaEstimator(const RegionMap &regions,
                           const ParentMap &parents, const RcaFabric &fabric,
                           const SttAwareParams &params)
    : regions_(regions), parents_(parents), fabric_(fabric),
      params_(params),
      pathOf_(static_cast<std::size_t>(regions.numBanks()))
{
    // Precompute the downstream nodes charged for congestion: the tail of
    // the TSB path from (but excluding) the parent to the child. For
    // core-layer TSB parents the whole in-layer path is downstream.
    for (BankId b = 0; b < regions_.numBanks(); ++b) {
        const NodeId parent = parents_.parentOf(b);
        const std::vector<NodeId> path = parents_.tsbPathTo(b);
        auto &out = pathOf_[static_cast<std::size_t>(b)];
        bool after_parent = false;
        for (const NodeId n : path) {
            if (after_parent)
                out.push_back(n);
            if (n == parent)
                after_parent = true;
        }
        if (!after_parent) // parent in the core layer: charge full path
            out = path;
    }
}

Cycle
RcaEstimator::estimate(BankId child, Cycle)
{
    std::uint32_t sum = 0;
    for (const NodeId n : pathOf_[static_cast<std::size_t>(child)])
        sum += fabric_.value(n);
    // Occupied slots approximate cycles of queueing at one flit per
    // cycle; halve to avoid double-charging traffic that also appears in
    // the diffusion term.
    return std::min<Cycle>(sum / 2, params_.congestionCap);
}

std::unique_ptr<CongestionEstimator>
makeEstimator(EstimatorKind kind, const RegionMap &regions,
              const ParentMap &parents, const SttAwareParams &params,
              const RcaFabric *fabric)
{
    switch (kind) {
      case EstimatorKind::Simple:
        return std::make_unique<SimpleEstimator>();
      case EstimatorKind::Window:
        return std::make_unique<WindowEstimator>(regions, parents, params);
      case EstimatorKind::Rca:
        fatal_if(fabric == nullptr,
                 "RCA estimator requires a sideband fabric");
        return std::make_unique<RcaEstimator>(regions, parents, *fabric,
                                              params);
      default:
        panic("unknown estimator kind");
    }
}

} // namespace stacknoc::sttnoc
