#include "sttnoc/rca_fabric.hh"

#include <algorithm>

namespace stacknoc::sttnoc {

RcaFabric::RcaFabric(noc::Network &net)
    : Ticking("sttnoc.rca_fabric"), net_(net),
      prev_(static_cast<std::size_t>(net.shape().totalNodes()), 0),
      next_(static_cast<std::size_t>(net.shape().totalNodes()), 0),
      snapshot_(static_cast<std::size_t>(net.shape().totalNodes()), 0)
{
}

void
RcaFabric::tick(Cycle)
{
    const int n = net_.shape().totalNodes();
    std::uint32_t acc = 0;
    for (NodeId id = 0; id < n; ++id) {
        // Aggregate the strongest neighbouring estimate at half weight
        // with the local buffer occupancy (a direction-free rendering
        // of Gratz et al.'s 50/50 local/upstream aggregation; taking
        // the max rather than the mean keeps small hotspots visible
        // through the 8-bit integer pipeline).
        std::uint32_t neighbor_max = 0;
        for (int d = 1; d < noc::kNumDirs; ++d) {
            const NodeId nb =
                net_.topology().neighbor(id, static_cast<noc::Dir>(d));
            if (nb == kInvalidNode)
                continue;
            neighbor_max = std::max(neighbor_max,
                                    prev_[static_cast<std::size_t>(nb)]);
        }
        const std::uint32_t local = snapshot_[static_cast<std::size_t>(id)];
        const std::uint32_t v =
            std::min<std::uint32_t>(local + neighbor_max / 2, 255);
        next_[static_cast<std::size_t>(id)] = v;
        acc |= v;
    }
    nextNonzero_ = acc != 0;
}

void
RcaFabric::onCycleEnd(Cycle)
{
    // Publish this cycle's diffusion step. When the tick was elided the
    // quiescence predicate guarantees next_ is still all-zero, so the
    // swap publishes zeros — exactly what a live tick would have done.
    std::swap(prev_, next_);
    std::swap(prevNonzero_, nextNonzero_);

    const int n = net_.shape().totalNodes();
    std::uint32_t acc = 0;
    for (NodeId id = 0; id < n; ++id) {
        const std::uint32_t c = static_cast<std::uint32_t>(
            net_.router(id).localCongestion());
        snapshot_[static_cast<std::size_t>(id)] = c;
        acc |= c;
    }
    snapNonzero_ = acc != 0;

    if (prevNonzero_ || nextNonzero_ || snapNonzero_)
        wake();
}

bool
RcaFabric::quiescent(Cycle) const
{
    return !prevNonzero_ && !nextNonzero_ && !snapNonzero_;
}

std::uint32_t
RcaFabric::value(NodeId n) const
{
    return prev_.at(static_cast<std::size_t>(n));
}

} // namespace stacknoc::sttnoc
