#include "sttnoc/bank_aware_policy.hh"

#include <algorithm>

#include "telemetry/trace.hh"

namespace stacknoc::sttnoc {

BankAwarePolicy::BankAwarePolicy(
    const RegionMap &regions, const ParentMap &parents,
    const SttAwareParams &params,
    std::unique_ptr<CongestionEstimator> estimator)
    : regions_(regions), parents_(parents), params_(params),
      estimator_(std::move(estimator)),
      busyUntil_(static_cast<std::size_t>(regions.numBanks()), 0),
      pathDelay_(static_cast<std::size_t>(regions.numBanks()), 0),
      holdMargin_(static_cast<std::size_t>(regions.numBanks()), 0),
      holdCyclesByBank_(static_cast<std::size_t>(regions.numBanks()), 0),
      stats_("sttnoc"),
      holdsStarted_(stats_.counter("holds_started")),
      holdCapReleases_(stats_.counter("hold_cap_releases")),
      busyMarks_(stats_.counter("busy_marks")),
      busyNacks_(stats_.counter("busy_nacks")),
      nackReopens_(stats_.counter("nack_window_reopens")),
      busyDuration_(stats_.average("busy_duration")),
      holdDurationHist_(stats_.histogram("parent_hold_duration_hist"))
{
    for (BankId b = 0; b < regions_.numBanks(); ++b) {
        const int dist = regions_.shape().hopDistance(
            parents_.parentOf(b), regions_.nodeOfBank(b));
        // Switch-to-service delay: 3 cycles per hop plus 2 ejection
        // cycles at the bank's NI (the paper's "4 cycles" for its
        // 2-cycle-router pipeline).
        pathDelay_[static_cast<std::size_t>(b)] =
            static_cast<Cycle>(3 * dist + 2);
    }
}

BankId
BankAwarePolicy::managedBank(NodeId router, const noc::Packet &pkt) const
{
    if (!noc::isRestrictedRequest(pkt.cls) || pkt.destBank == kInvalidBank)
        return kInvalidBank;
    if (parents_.parentOf(pkt.destBank) != router)
        return kInvalidBank;
    return pkt.destBank;
}

bool
BankAwarePolicy::holdable(const noc::Packet &pkt)
{
    // Only write-class requests are re-ordered — the "delayed writes"
    // of the paper's abstract. Store writes are fire-and-forget (no
    // L1 resource is held while they travel), so parking them in
    // router VCs costs the core nothing, while the freed bank and
    // switch slots accelerate the loads that do block commit. Loads
    // (GetS) are never held: they would merely trade bank queueing for
    // network queueing plus prediction error.
    return pkt.cls == noc::PacketClass::StoreWrite ||
           pkt.cls == noc::PacketClass::WritebackReq;
}

bool
BankAwarePolicy::eligible(NodeId router, noc::Packet &pkt, Cycle now)
{
    // Within a bank's write window packets are merely de-prioritised
    // (priorityClass), never blocked: an unconditional hold would
    // serialise store bursts and strangle the write lanes. A real hold
    // engages only when the estimator reports the child's path backed
    // up — then forwarding would wedge the child's links for every
    // passing flow, while parking at the parent confines the jam to
    // one VC. This is exactly where SS (no congestion estimate) falls
    // short of RCA/WB, as in the paper.
    if (params_.delayMode != DelayMode::Hold)
        return true;
    const BankId bank = managedBank(router, pkt);
    if (bank == kInvalidBank || !holdable(pkt) || !estimator_)
        return true;
    // Hold-mode ablation: block while (a) the child is inside the busy
    // window of an earlier write or (b) the estimator reports the
    // child's path backed up. Held packets are all on the write virtual
    // network, so loads, responses and coherence traffic flow past.
    const Cycle arrival = now + pathDelay_[static_cast<std::size_t>(bank)];
    const bool in_window =
        arrival < busyUntil_[static_cast<std::size_t>(bank)];
    const bool congested = estimator_->estimate(bank, now) >
                           params_.congestionHoldThreshold;
    if (!in_window && !congested)
        return true;
    if (pkt.firstHeldAt == kCycleNever) {
        pkt.firstHeldAt = now;
        if (auto *t = telemetry::tracer(); t && t->tracked(pkt.id)) {
            t->record(telemetry::TraceEvent::HoldStart, pkt.id,
                      static_cast<std::uint8_t>(pkt.cls), router, now,
                      static_cast<std::int64_t>(bank));
        }
    }
    if (now - pkt.firstHeldAt >= params_.holdCap) {
        holdCapReleases_.inc();
        return true; // starvation guard
    }
    return false;
}

int
BankAwarePolicy::priorityClass(NodeId router, const noc::Packet &pkt,
                               Cycle now)
{
    // Section 3.2: coherence traffic, responses and memory-controller
    // packets are prioritised over cache requests.
    const int vn = noc::vnetOf(pkt.cls);
    if (vn == noc::kVnetResp || vn == noc::kVnetCoh)
        return 0;
    const BankId bank = managedBank(router, pkt);
    if (bank == kInvalidBank || !holdable(pkt))
        return 1;
    const Cycle arrival = now + pathDelay_[static_cast<std::size_t>(bank)];
    if (arrival >= busyUntil_[static_cast<std::size_t>(bank)])
        return 1;
    // A write toward a child predicted busy with an earlier write:
    // yield to idle-bank requests, reads, coherence and responses.
    holdsStarted_.inc();
    ++holdCyclesByBank_[static_cast<std::size_t>(bank)];
    return 2;
}

void
BankAwarePolicy::onForward(NodeId router, noc::Packet &pkt, Cycle now)
{
    const BankId bank = managedBank(router, pkt);
    if (bank == kInvalidBank)
        return;
    if (pkt.firstHeldAt != kCycleNever) {
        holdDurationHist_.sample(now - pkt.firstHeldAt);
        holdCyclesByBank_[static_cast<std::size_t>(bank)] +=
            static_cast<std::uint64_t>(now - pkt.firstHeldAt);
        if (auto *t = telemetry::tracer(); t && t->tracked(pkt.id)) {
            t->record(telemetry::TraceEvent::HoldEnd, pkt.id,
                      static_cast<std::uint8_t>(pkt.cls), router, now,
                      static_cast<std::int64_t>(now - pkt.firstHeldAt));
        }
    }
    if (!estimator_)
        return;
    estimator_->onForward(bank, pkt, router, now);
    if (noc::isLongBankWrite(pkt.cls)) {
        // Section 3.5: following a forwarded write, the bank is
        // predicted busy for path delay + estimated congestion + the
        // 33-cycle write service. Each new write restarts the window
        // (the paper's counters are reloaded, not accumulated — an
        // earlier accumulate-to-horizon variant over-held badly).
        auto &horizon = busyUntil_[static_cast<std::size_t>(bank)];
        horizon = now + pathDelay_[static_cast<std::size_t>(bank)] +
                  estimator_->estimate(bank, now) +
                  params_.writeServiceCycles +
                  holdMargin_[static_cast<std::size_t>(bank)];
        busyMarks_.inc();
        busyDuration_.sample(static_cast<double>(horizon - now));
    }
}

void
BankAwarePolicy::onProbeAck(const noc::Packet &pkt, Cycle now)
{
    if (estimator_)
        estimator_->onProbeAck(pkt, now);
}

void
BankAwarePolicy::configureFaultRecovery(Cycle margin_cap)
{
    marginCap_ = margin_cap;
}

void
BankAwarePolicy::onBusyNack(const noc::Packet &pkt, Cycle now)
{
    if (marginCap_ == 0)
        return; // recovery path not configured
    const BankId bank = static_cast<BankId>(pkt.info.origin);
    if (bank < 0 || bank >= regions_.numBanks())
        return;
    busyNacks_.inc();

    // The bank reports it stays busy for another aux cycles (one
    // write-verify-retry round, clamped to the recovery contract).
    const Cycle remaining =
        std::min<Cycle>(static_cast<Cycle>(pkt.info.aux), marginCap_);
    auto &horizon = busyUntil_[static_cast<std::size_t>(bank)];
    if (now + remaining > horizon) {
        horizon = now + remaining;
        nackReopens_.inc();
    }

    // Adaptive hold margin: EWMA (alpha = 1/8) of the overshoot each
    // NACK reveals, clamped so predictions stay within the relaxed
    // parent-hold invariant. Written only here — at the parent node's
    // NI — and read at the parent router: co-sharded, deterministic.
    auto &margin = holdMargin_[static_cast<std::size_t>(bank)];
    const std::int64_t delta = static_cast<std::int64_t>(remaining) -
                               static_cast<std::int64_t>(margin);
    margin = static_cast<Cycle>(static_cast<std::int64_t>(margin) +
                                delta / 8);
    if (margin > marginCap_)
        margin = marginCap_;
}

Cycle
BankAwarePolicy::busyUntil(BankId bank) const
{
    return busyUntil_.at(static_cast<std::size_t>(bank));
}

} // namespace stacknoc::sttnoc
