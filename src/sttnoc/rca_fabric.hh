/**
 * @file
 * The RCA sideband network: 8-bit congestion values diffused between
 * neighbouring routers over dedicated wires (after Gratz, Grot & Keckler,
 * HPCA'08, as adopted by the paper's RCA scheme).
 */

#ifndef STACKNOC_STTNOC_RCA_FABRIC_HH
#define STACKNOC_STTNOC_RCA_FABRIC_HH

#include <vector>

#include "sim/ticking.hh"
#include "noc/network.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::sttnoc {

/**
 * Each cycle every router publishes
 *   value(n) = (local buffer occupancy + mean of neighbours' previous
 *               values) / 2
 * saturating at 8 bits. The double-buffered update gives the one-cycle
 * propagation latency of real sideband wires. Readers see last cycle's
 * values, so tick ordering does not matter.
 *
 * The local buffer occupancies are themselves double-buffered: a
 * cycle-end snapshot (onCycleEnd(), which the owner must register with
 * Simulator::onCycleEnd) captures every router's localCongestion()
 * after all router ticks, and the next cycle's tick() reads only that
 * snapshot. This removes the one serial live read the fabric used to
 * make, letting it tick inside the parallel phase of the sharded
 * engine; the sideband lags the live buffers by one extra cycle, which
 * is within the physical latency the wires model anyway.
 */
class RcaFabric final : public Ticking
{
  public:
    explicit RcaFabric(noc::Network &net);

    void tick(Cycle now) override;

    /**
     * Capture the post-tick router congestion and publish this cycle's
     * diffusion step (the prev/next swap). Must run in every cycle's
     * end phase, whether or not tick() was elided.
     */
    void onCycleEnd(Cycle now);

    /** Idle iff the published, pending, and snapshot values are all 0. */
    bool quiescent(Cycle now) const override;

    TickKind tickKind() const override { return TickKind::RcaFabric; }

    /** @return the diffused congestion value at node @p n (0..255). */
    std::uint32_t value(NodeId n) const;

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    noc::Network &net_;
    std::vector<std::uint32_t> prev_;
    std::vector<std::uint32_t> next_;
    /** Router localCongestion() captured at the end of the last cycle. */
    std::vector<std::uint32_t> snapshot_;
    bool prevNonzero_ = false;
    bool nextNonzero_ = false;
    bool snapNonzero_ = false;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_RCA_FABRIC_HH
