/**
 * @file
 * The RCA sideband network: 8-bit congestion values diffused between
 * neighbouring routers over dedicated wires (after Gratz, Grot & Keckler,
 * HPCA'08, as adopted by the paper's RCA scheme).
 */

#ifndef STACKNOC_STTNOC_RCA_FABRIC_HH
#define STACKNOC_STTNOC_RCA_FABRIC_HH

#include <vector>

#include "sim/ticking.hh"
#include "noc/network.hh"

namespace stacknoc::sttnoc {

/**
 * Each cycle every router publishes
 *   value(n) = (local buffer occupancy + mean of neighbours' previous
 *               values) / 2
 * saturating at 8 bits. The double-buffered update gives the one-cycle
 * propagation latency of real sideband wires. Readers see last cycle's
 * values, so tick ordering does not matter.
 */
class RcaFabric : public Ticking
{
  public:
    explicit RcaFabric(noc::Network &net);

    void tick(Cycle now) override;

    /** @return the diffused congestion value at node @p n (0..255). */
    std::uint32_t value(NodeId n) const;

  private:
    noc::Network &net_;
    std::vector<std::uint32_t> prev_;
    std::vector<std::uint32_t> next_;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_RCA_FABRIC_HH
