/**
 * @file
 * Parent/child relationships between routers and STT-RAM banks.
 *
 * With all region requests entering the cache layer at the region TSB and
 * X-Y routing inside the layer, every request to a bank crosses the router
 * H hops upstream of the bank on that path — its parent (Section 3.4).
 * Banks closer than H hops to the TSB entry are parented by the core-layer
 * TSB router itself, as in the paper's Figure 4 discussion.
 */

#ifndef STACKNOC_STTNOC_PARENT_MAP_HH
#define STACKNOC_STTNOC_PARENT_MAP_HH

#include <vector>

#include "common/types.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::sttnoc {

/** Computes and stores the parent router of every bank. */
class ParentMap
{
  public:
    /**
     * @param regions the logical region partition.
     * @param hops re-ordering distance H (the paper settles on 2).
     */
    ParentMap(const RegionMap &regions, int hops = 2);

    /** @return router that re-orders traffic for @p bank. */
    NodeId parentOf(BankId bank) const;

    /** @return banks managed by router @p parent (possibly empty). */
    const std::vector<BankId> &childrenOf(NodeId parent) const;

    /** @return whether @p node re-orders traffic for at least one bank. */
    bool isParent(NodeId node) const;

    int hops() const { return hops_; }

    /**
     * The X-Y path of cache-layer nodes from the bank's region TSB entry
     * to the bank, inclusive of both endpoints (exposed for tests and for
     * the congestion estimators, which inspect intermediate nodes).
     */
    std::vector<NodeId> tsbPathTo(BankId bank) const;

  private:
    const RegionMap &regions_;
    int hops_;
    std::vector<NodeId> parentOfBank_;
    std::vector<std::vector<BankId>> childrenOfNode_;
    std::vector<BankId> empty_;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_PARENT_MAP_HH
