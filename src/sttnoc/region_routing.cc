#include "sttnoc/region_routing.hh"

namespace stacknoc::sttnoc {

RegionRouting::RegionRouting(const RegionMap &regions)
    : regions_(regions), fallback_(regions.shape())
{
}

noc::Dir
RegionRouting::route(NodeId here, const noc::Packet &pkt) const
{
    const MeshShape &shape = regions_.shape();
    const Coord c = shape.coord(here);
    const Coord d = shape.coord(pkt.dest);

    // Only core-layer-to-cache-layer requests are funnelled through the
    // region TSBs; everything else keeps full path diversity.
    if (noc::isRestrictedRequest(pkt.cls) && c.layer == 0 && d.layer == 1) {
        const BankId bank = regions_.bankOfNode(pkt.dest);
        const NodeId tsb_core =
            regions_.tsbCoreNode(regions_.regionOf(bank));
        if (here == tsb_core)
            return noc::Dir::Down;
        return noc::ZxyRouting::xyStep(c, shape.coord(tsb_core));
    }
    return fallback_.route(here, pkt);
}

} // namespace stacknoc::sttnoc
