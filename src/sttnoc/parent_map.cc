#include "sttnoc/parent_map.hh"

#include "common/logging.hh"

namespace stacknoc::sttnoc {

namespace {

/** One X-then-Y step between two cache-layer coordinates. */
Coord
xyStep(Coord c, const Coord &to)
{
    if (c.x < to.x)
        ++c.x;
    else if (c.x > to.x)
        --c.x;
    else if (c.y < to.y)
        ++c.y;
    else if (c.y > to.y)
        --c.y;
    return c;
}

} // namespace

ParentMap::ParentMap(const RegionMap &regions, int hops)
    : regions_(regions), hops_(hops)
{
    fatal_if(hops_ < 1, "parent distance must be >= 1 hop");
    const MeshShape &shape = regions_.shape();
    parentOfBank_.assign(static_cast<std::size_t>(regions_.numBanks()),
                         kInvalidNode);
    childrenOfNode_.assign(static_cast<std::size_t>(shape.totalNodes()),
                           {});

    for (BankId b = 0; b < regions_.numBanks(); ++b) {
        const std::vector<NodeId> path = tsbPathTo(b);
        const int len = static_cast<int>(path.size()) - 1; // hops
        NodeId parent;
        if (len >= hops_) {
            parent = path[static_cast<std::size_t>(len - hops_)];
        } else {
            // Too close to the TSB entry: managed by the core-layer TSB
            // router vertically above the entry point.
            parent = regions_.tsbCoreNode(regions_.regionOf(b));
        }
        parentOfBank_[static_cast<std::size_t>(b)] = parent;
        childrenOfNode_[static_cast<std::size_t>(parent)].push_back(b);
    }
}

std::vector<NodeId>
ParentMap::tsbPathTo(BankId bank) const
{
    const MeshShape &shape = regions_.shape();
    const NodeId entry = regions_.tsbCacheNode(regions_.regionOf(bank));
    const NodeId target = regions_.nodeOfBank(bank);
    std::vector<NodeId> path{entry};
    Coord c = shape.coord(entry);
    const Coord to = shape.coord(target);
    while (shape.node(c) != target) {
        c = xyStep(c, to);
        path.push_back(shape.node(c));
        panic_if(path.size() >
                     static_cast<std::size_t>(shape.totalNodes()),
                 "TSB path loop toward bank %d", bank);
    }
    return path;
}

NodeId
ParentMap::parentOf(BankId bank) const
{
    return parentOfBank_.at(static_cast<std::size_t>(bank));
}

const std::vector<BankId> &
ParentMap::childrenOf(NodeId parent) const
{
    return childrenOfNode_.at(static_cast<std::size_t>(parent));
}

bool
ParentMap::isParent(NodeId node) const
{
    return !childrenOfNode_.at(static_cast<std::size_t>(node)).empty();
}

} // namespace stacknoc::sttnoc
