/**
 * @file
 * Logical partitioning of the cache layer into regions, each served by a
 * single core-to-cache through-silicon bus (TSB) — Section 3.4/Figure 4
 * of the paper.
 */

#ifndef STACKNOC_STTNOC_REGION_MAP_HH
#define STACKNOC_STTNOC_REGION_MAP_HH

#include <vector>

#include "common/geometry.hh"
#include "common/types.hh"

namespace stacknoc::sttnoc {

/** Where a region's TSB sits (Figure 11 of the paper). */
enum class TsbPlacement {
    Corner,  //!< innermost corner of the region (toward the mesh centre)
    Stagger, //!< distinct columns so Y-flows toward TSBs do not overlap
};

/** Region partitioning parameters. */
struct RegionConfig
{
    int numRegions = 4;                        //!< 4, 8, or 16
    TsbPlacement placement = TsbPlacement::Corner;
};

/**
 * Partitions the cache layer into rectangular regions and assigns each
 * region's TSB cell. Banks are numbered 0..nodesPerLayer-1, with bank b
 * attached to cache-layer node nodesPerLayer + b.
 */
class RegionMap
{
  public:
    RegionMap(const MeshShape &shape, const RegionConfig &config);

    int numRegions() const { return numRegions_; }
    const RegionConfig &config() const { return config_; }
    const MeshShape &shape() const { return shape_; }

    /** @return region that bank @p bank belongs to. */
    int regionOf(BankId bank) const;

    /** @return cache-layer node at the bottom of region @p r's TSB. */
    NodeId tsbCacheNode(int r) const;

    /** @return core-layer node at the top of region @p r's TSB. */
    NodeId tsbCoreNode(int r) const;

    /** @return bank attached to cache-layer node @p n. */
    BankId bankOfNode(NodeId n) const;

    /** @return cache-layer node hosting bank @p bank. */
    NodeId nodeOfBank(BankId bank) const;

    /** @return number of banks (== nodes per layer). */
    int numBanks() const { return shape_.nodesPerLayer(); }

    /** @return banks belonging to region @p r. */
    std::vector<BankId> banksInRegion(int r) const;

  private:
    struct Rect
    {
        int x0, y0, x1, y1; //!< inclusive bounds
    };

    void buildRegions();
    void placeTsbs();

    MeshShape shape_;
    RegionConfig config_;
    int numRegions_;
    std::vector<Rect> rects_;
    std::vector<int> regionOfBank_;
    std::vector<NodeId> tsbCacheNode_;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_REGION_MAP_HH
