/**
 * @file
 * Path-diversity-restricted routing: core-to-cache requests travel X-Y to
 * their region's TSB, descend, then X-Y to the bank (Section 3.4). All
 * other traffic — responses, coherence, memory — uses plain Z-X-Y over
 * all 64 TSVs, exactly as the paper allows.
 */

#ifndef STACKNOC_STTNOC_REGION_ROUTING_HH
#define STACKNOC_STTNOC_REGION_ROUTING_HH

#include "noc/routing.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::sttnoc {

/** The restricted routing function used by all 4TSB design scenarios. */
class RegionRouting : public noc::RoutingFunction
{
  public:
    explicit RegionRouting(const RegionMap &regions);

    noc::Dir route(NodeId here, const noc::Packet &pkt) const override;

  private:
    const RegionMap &regions_;
    noc::ZxyRouting fallback_;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_REGION_ROUTING_HH
