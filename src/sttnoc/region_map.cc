#include "sttnoc/region_map.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace stacknoc::sttnoc {

RegionMap::RegionMap(const MeshShape &shape, const RegionConfig &config)
    : shape_(shape), config_(config), numRegions_(config.numRegions)
{
    fatal_if(shape_.layers() != 2, "RegionMap expects a two-layer stack");
    fatal_if(numRegions_ < 1, "numRegions must be >= 1");
    buildRegions();
    placeTsbs();
}

void
RegionMap::buildRegions()
{
    const int w = shape_.width();
    const int h = shape_.height();

    // Factor numRegions into a grid of rx columns x ry rows of regions,
    // preferring the squarest tiling that divides the mesh evenly.
    int rx = 0;
    for (int cand = static_cast<int>(std::sqrt(
             static_cast<double>(numRegions_))); cand >= 1; --cand) {
        if (numRegions_ % cand != 0)
            continue;
        const int ry = numRegions_ / cand;
        // Prefer more columns when the square root is not exact.
        const int cols = std::max(cand, ry);
        const int rows = numRegions_ / cols;
        if (w % cols == 0 && h % rows == 0) {
            rx = cols;
            break;
        }
        if (w % cand == 0 && h % ry == 0) {
            rx = cand;
            break;
        }
    }
    fatal_if(rx == 0, "cannot tile %dx%d mesh into %d regions", w, h,
             numRegions_);
    // For the paper's 8-region case this yields 2 columns x 4 rows of
    // 4x2 tiles, matching Figure 11(c).
    if (numRegions_ == 8 && w == 8 && h == 8)
        rx = 2;

    const int ry = numRegions_ / rx;
    fatal_if(w % rx != 0 || h % ry != 0,
             "region grid %dx%d does not divide mesh %dx%d", rx, ry, w, h);
    const int tile_w = w / rx;
    const int tile_h = h / ry;

    rects_.clear();
    for (int gy = 0; gy < ry; ++gy) {
        for (int gx = 0; gx < rx; ++gx) {
            rects_.push_back(Rect{gx * tile_w, gy * tile_h,
                                  (gx + 1) * tile_w - 1,
                                  (gy + 1) * tile_h - 1});
        }
    }

    regionOfBank_.assign(static_cast<std::size_t>(shape_.nodesPerLayer()),
                         -1);
    for (BankId b = 0; b < shape_.nodesPerLayer(); ++b) {
        const Coord c = shape_.coord(nodeOfBank(b));
        const int gx = c.x / tile_w;
        const int gy = c.y / tile_h;
        regionOfBank_[static_cast<std::size_t>(b)] = gy * rx + gx;
    }
}

void
RegionMap::placeTsbs()
{
    const int w = shape_.width();
    const int h = shape_.height();
    tsbCacheNode_.assign(static_cast<std::size_t>(numRegions_),
                         kInvalidNode);

    // Innermost coordinate of a span [lo,hi]: the end nearest the centre.
    auto inner = [](int lo, int hi, int dim) {
        const double centre = (dim - 1) / 2.0;
        return std::abs(lo - centre) < std::abs(hi - centre) ? lo : hi;
    };

    std::vector<int> column_use(static_cast<std::size_t>(w), 0);
    for (int r = 0; r < numRegions_; ++r) {
        const Rect &rect = rects_[static_cast<std::size_t>(r)];
        const int y = inner(rect.y0, rect.y1, h);
        int x = inner(rect.x0, rect.x1, w);
        if (config_.placement == TsbPlacement::Stagger) {
            // Pick the least-used column in the region, breaking ties
            // toward the mesh centre, so TSB-bound Y-flows in the core
            // layer travel along disjoint columns.
            int best = x;
            for (int cand = rect.x0; cand <= rect.x1; ++cand) {
                const auto use_c = column_use[std::size_t(cand)];
                const auto use_b = column_use[std::size_t(best)];
                const double centre = (w - 1) / 2.0;
                if (use_c < use_b ||
                    (use_c == use_b &&
                     std::abs(cand - centre) < std::abs(best - centre))) {
                    best = cand;
                }
            }
            x = best;
        }
        ++column_use[static_cast<std::size_t>(x)];
        tsbCacheNode_[static_cast<std::size_t>(r)] = shape_.node(x, y, 1);
    }
}

int
RegionMap::regionOf(BankId bank) const
{
    return regionOfBank_.at(static_cast<std::size_t>(bank));
}

NodeId
RegionMap::tsbCacheNode(int r) const
{
    return tsbCacheNode_.at(static_cast<std::size_t>(r));
}

NodeId
RegionMap::tsbCoreNode(int r) const
{
    const Coord c = shape_.coord(tsbCacheNode(r));
    return shape_.node(c.x, c.y, 0);
}

BankId
RegionMap::bankOfNode(NodeId n) const
{
    const BankId b = n - shape_.nodesPerLayer();
    panic_if(b < 0 || b >= shape_.nodesPerLayer(),
             "node %d is not a cache-layer node", n);
    return b;
}

NodeId
RegionMap::nodeOfBank(BankId bank) const
{
    panic_if(bank < 0 || bank >= shape_.nodesPerLayer(), "bad bank %d",
             bank);
    return bank + shape_.nodesPerLayer();
}

std::vector<BankId>
RegionMap::banksInRegion(int r) const
{
    std::vector<BankId> banks;
    for (BankId b = 0; b < numBanks(); ++b)
        if (regionOf(b) == r)
            banks.push_back(b);
    return banks;
}

} // namespace stacknoc::sttnoc
