/**
 * @file
 * Busy-duration congestion estimators — Section 3.5 of the paper.
 *
 * A parent router delays a request to a busy child bank for
 *   path delay + estimated congestion + write service time
 * cycles. The three estimators differ only in the congestion term:
 * SS ignores it, RCA aggregates neighbouring buffer occupancy over
 * sideband wires, and WB measures round-trip time with tagged probes.
 */

#ifndef STACKNOC_STTNOC_ESTIMATOR_HH
#define STACKNOC_STTNOC_ESTIMATOR_HH

#include <memory>
#include <vector>

#include "common/types.hh"
#include "noc/packet.hh"
#include "sttnoc/parent_map.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::sttnoc {

class RcaFabric;

/** Which congestion estimator a scenario uses. */
enum class EstimatorKind {
    Simple, //!< SS: congestion assumed zero
    Rca,    //!< regional congestion awareness (Gratz et al. style)
    Window, //!< WB: timestamp probe / ACK round-trip sampling
};

/** @return short printable name ("SS", "RCA", "WB"). */
const char *estimatorName(EstimatorKind kind);

/**
 * How a parent router expresses "delay this write".
 *
 * The paper describes delaying requests outright; in this wormhole
 * network, blocking a packet inside its FIFO input VC also dams every
 * packet behind it, and sustained holds strangle the shared write
 * artery of a region (measured: up to -48% IPC on sjbb). Priority mode
 * therefore de-prioritises instead of blocking: the delayed write loses
 * every arbitration against reads, responses, coherence and idle-bank
 * traffic, but still flows when nothing competes. Hold mode implements
 * the literal blocking delay and is kept for the ablation study.
 */
enum class DelayMode {
    Priority, //!< lose arbitrations inside the busy window (default)
    Hold,     //!< block in the input VC until the window expires
};

/** Parameters of the STT-RAM-aware arbitration mechanism. */
struct SttAwareParams
{
    EstimatorKind estimator = EstimatorKind::Window;

    DelayMode delayMode = DelayMode::Priority;

    /** STT-RAM write service time (Table 2: 33 cycles at 3 GHz). */
    Cycle writeServiceCycles = 33;

    /** Starvation cap: a held packet is released after this many cycles. */
    Cycle holdCap = 99;

    /**
     * WB: tag one probe per child bank every windowN forwarded packets.
     * The paper uses N=100 against 50M-instruction runs; our measured
     * windows are four orders of magnitude shorter, so the probe rate
     * scales accordingly (the estimate must track congestion onset).
     */
    int windowN = 8;

    /** WB: an estimate older than this is treated as stale (zero). */
    Cycle estimateStaleAfter = 1000;

    /**
     * Hold a write at its parent while the estimated congestion toward
     * the child exceeds this threshold: forwarding into a backed-up
     * child would wedge the child's links for every passing flow,
     * while parking at the parent confines the jam to one VC.
     */
    Cycle congestionHoldThreshold = 16;

    /** WB: drop an outstanding probe after this many cycles. */
    Cycle probeTimeout = 4096;

    /** Saturating cap of the congestion estimate (8-bit counters). */
    Cycle congestionCap = 255;
};

/**
 * Estimates the network congestion (in cycles) between a bank's parent
 * router and the bank.
 */
class CongestionEstimator
{
  public:
    virtual ~CongestionEstimator() = default;

    /** @return current congestion estimate toward @p child, in cycles. */
    virtual Cycle estimate(BankId child, Cycle now) = 0;

    /**
     * Side-effect-free variant of estimate() for observers (validation):
     * must return what estimate() would, without expiring probes or
     * touching any internal state.
     */
    virtual Cycle peekEstimate(BankId child, Cycle now) const
    {
        (void)child; (void)now;
        return 0;
    }

    /** The parent forwarded the head of @p pkt toward @p child. */
    virtual void
    onForward(BankId child, noc::Packet &pkt, NodeId parent, Cycle now)
    {
        (void)child; (void)pkt; (void)parent; (void)now;
    }

    /** A probe echo addressed to a parent arrived (WB only). */
    virtual void
    onProbeAck(const noc::Packet &pkt, Cycle now)
    {
        (void)pkt; (void)now;
    }
};

/** SS: no congestion modelling at all. */
class SimpleEstimator : public CongestionEstimator
{
  public:
    Cycle estimate(BankId, Cycle) override { return 0; }
};

/**
 * WB: every windowN-th packet toward a child is tagged with an 8-bit
 * timestamp; the child's NI echoes it in a ProbeAck. Congestion is half
 * of the round trip in excess of the contention-free round trip (the
 * paper attributes half the excess to the forward path).
 */
class WindowEstimator : public CongestionEstimator
{
  public:
    WindowEstimator(const RegionMap &regions, const ParentMap &parents,
                    const SttAwareParams &params);

    Cycle estimate(BankId child, Cycle now) override;
    Cycle peekEstimate(BankId child, Cycle now) const override;
    void onForward(BankId child, noc::Packet &pkt, NodeId parent,
                   Cycle now) override;
    void onProbeAck(const noc::Packet &pkt, Cycle now) override;

    /** Contention-free round trip parent->child->parent, in cycles. */
    Cycle baseRtt(BankId child) const;

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    struct ChildState
    {
        std::uint64_t forwarded = 0;
        bool probeOutstanding = false;
        std::int16_t stamp = 0;
        Cycle sentAt = 0;
        Cycle congestion = 0;
        Cycle updatedAt = 0;
    };

    const RegionMap &regions_;
    const ParentMap &parents_;
    SttAwareParams params_;
    std::vector<ChildState> state_;
};

/**
 * RCA: reads a sideband congestion fabric (RcaFabric) that diffuses
 * per-router buffer occupancy, and charges the parent the occupancy seen
 * along the parent->child X-Y path.
 */
class RcaEstimator : public CongestionEstimator
{
  public:
    RcaEstimator(const RegionMap &regions, const ParentMap &parents,
                 const RcaFabric &fabric, const SttAwareParams &params);

    Cycle estimate(BankId child, Cycle now) override;

    Cycle
    peekEstimate(BankId child, Cycle now) const override
    {
        return const_cast<RcaEstimator *>(this)->estimate(child, now);
    }

  private:
    const RegionMap &regions_;
    const ParentMap &parents_;
    const RcaFabric &fabric_;
    SttAwareParams params_;
    /** Cache-layer path parent->child per bank (excluding the parent). */
    std::vector<std::vector<NodeId>> pathOf_;
};

/** Factory covering the three schemes (RCA requires a fabric). */
std::unique_ptr<CongestionEstimator>
makeEstimator(EstimatorKind kind, const RegionMap &regions,
              const ParentMap &parents, const SttAwareParams &params,
              const RcaFabric *fabric);

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_ESTIMATOR_HH
