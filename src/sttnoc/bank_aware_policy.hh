/**
 * @file
 * The STT-RAM bank-aware arbitration policy — the paper's contribution.
 *
 * At each bank's parent router, writes destined to a child bank whose
 * busy window (opened by an earlier forwarded write) is still running
 * are delayed: in the default Priority mode they lose every VC and
 * switch arbitration against requests to idle banks, reads, coherence
 * and responses; in the ablation Hold mode they are blocked outright in
 * their input VCs (bounded by a starvation cap), optionally also while
 * the congestion estimator reports the child's path backed up.
 */

#ifndef STACKNOC_STTNOC_BANK_AWARE_POLICY_HH
#define STACKNOC_STTNOC_BANK_AWARE_POLICY_HH

#include <memory>
#include <vector>

#include "sim/stats.hh"
#include "noc/network_interface.hh"
#include "noc/policy.hh"
#include "sttnoc/estimator.hh"
#include "sttnoc/parent_map.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::snapshot {
class StateIO;
} // namespace stacknoc::snapshot

namespace stacknoc::sttnoc {

/**
 * Implements noc::ArbitrationPolicy (consulted by every router) and
 * noc::ProbeSink (receives WB probe echoes at parent-node NIs).
 */
class BankAwarePolicy : public noc::ArbitrationPolicy,
                        public noc::ProbeSink
{
  public:
    /**
     * @param regions region partition (must outlive the policy).
     * @param parents parent map (must outlive the policy).
     * @param params scheme parameters.
     * @param estimator congestion estimator (ownership transferred).
     */
    BankAwarePolicy(const RegionMap &regions, const ParentMap &parents,
                    const SttAwareParams &params,
                    std::unique_ptr<CongestionEstimator> estimator);

    /**
     * Replace the congestion estimator. Exists because the RCA fabric
     * can only be built after the network, which needs the policy first;
     * must be called before simulation starts.
     */
    void
    setEstimator(std::unique_ptr<CongestionEstimator> estimator)
    {
        estimator_ = std::move(estimator);
    }

    bool eligible(NodeId router, noc::Packet &pkt, Cycle now) override;
    int priorityClass(NodeId router, const noc::Packet &pkt,
                      Cycle now) override;
    void onForward(NodeId router, noc::Packet &pkt, Cycle now) override;
    void onProbeAck(const noc::Packet &pkt, Cycle now) override;
    void onBusyNack(const noc::Packet &pkt, Cycle now) override;

    /**
     * Enable the hold-miss recovery path: BusyNacks re-open busy
     * windows and feed a per-bank adaptive hold margin (EWMA of the
     * observed overshoot, alpha = 1/8) added to every new prediction.
     * @param margin_cap clamp on both the margin and the per-NACK
     * window extension; also the slack the parent-hold invariant
     * grants (horizonSlack()).
     */
    void configureFaultRecovery(Cycle margin_cap);

    /** @return cycle until which @p bank is predicted busy. */
    Cycle busyUntil(BankId bank) const;

    /** Contention-free parent->bank delivery delay (validation). */
    Cycle
    pathDelay(BankId bank) const
    {
        return pathDelay_.at(static_cast<std::size_t>(bank));
    }

    /** Adaptive hold margin learned for @p bank (0 without faults). */
    Cycle
    holdMargin(BankId bank) const
    {
        return holdMargin_.at(static_cast<std::size_t>(bank));
    }

    /**
     * Cycles a busy horizon may exceed the paper's Section 3.5 bound:
     * the hold-miss recovery contract the parent-hold invariant checks.
     * Zero when fault recovery is not configured (the exact bound).
     */
    Cycle horizonSlack() const { return marginCap_; }

    /** @return the congestion estimator, for observer-only peeks. */
    const CongestionEstimator *estimator() const { return estimator_.get(); }

    /** @return the policy's own statistics (holds, hold cycles, ...). */
    stats::Group &stats() { return stats_; }
    const stats::Group &stats() const { return stats_; }

    /**
     * Per-bank parent-hold pressure for spatial exporters: Hold-mode
     * holds add their real duration on release; Priority-mode
     * deferrals (a write losing arbitration inside a busy window) add
     * one each. Written only from the bank's parent router's tick
     * (each bank has exactly one parent), read from cycle-end probes
     * after the phase barrier.
     */
    std::uint64_t
    holdCyclesOfBank(BankId bank) const
    {
        return holdCyclesByBank_.at(static_cast<std::size_t>(bank));
    }

    const SttAwareParams &params() const { return params_; }

  private:
    friend class snapshot::StateIO; //!< checkpoint save/restore

    /** @return bank id if @p pkt is a reorderable request to a child of
     *  @p router, else kInvalidBank. */
    BankId managedBank(NodeId router, const noc::Packet &pkt) const;

    /** @return whether @p pkt may be held at its parent. */
    static bool holdable(const noc::Packet &pkt);

    const RegionMap &regions_;
    const ParentMap &parents_;
    SttAwareParams params_;
    std::unique_ptr<CongestionEstimator> estimator_;
    std::vector<Cycle> busyUntil_;
    /** Contention-free parent->bank delivery delay, per bank. */
    std::vector<Cycle> pathDelay_;
    /** Per-bank adaptive hold margin; written only from the bank's
     *  parent node (its NI receives the NACKs), read from the parent
     *  router — co-sharded, so deterministic under --threads. */
    std::vector<Cycle> holdMargin_;
    Cycle marginCap_ = 0; //!< 0 = hold-miss recovery disabled
    /** See holdCyclesOfBank(). */
    std::vector<std::uint64_t> holdCyclesByBank_;

    stats::Group stats_;
    stats::Counter &holdsStarted_;
    stats::Counter &holdCapReleases_;
    stats::Counter &busyMarks_;
    stats::Counter &busyNacks_;
    stats::Counter &nackReopens_;
    stats::Average &busyDuration_;
    stats::Histogram &holdDurationHist_;
};

} // namespace stacknoc::sttnoc

#endif // STACKNOC_STTNOC_BANK_AWARE_POLICY_HH
