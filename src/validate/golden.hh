/**
 * @file
 * Differential golden model of L2 bank service order.
 *
 * In plain mode without read priority, a bank controller is a single
 * FIFO queue in front of a port that serves one access at a time:
 *
 *     start_i = max(enqueue_i, done_{i-1})
 *     done_i  = start_i + (isWrite ? writeCycles : readCycles)
 *
 * replayBankTrace() reconstructs that queue per bank from the packet
 * lifecycle trace (BankQueueEnter / BankServiceStart events) and checks
 * the full simulator agreed with the golden model on both the service
 * *order* (FIFO) and the service *start cycle* of every access, and it
 * returns the golden total of bank-busy cycles for comparison with the
 * simulator's bank_busy_cycles statistic.
 *
 * Validity requires: plain mode (no write buffer), readPriority off
 * (read priority reorders the queue), every access traced (tracer
 * sampling 1, ring large enough that nothing was dropped), and no
 * stats/trace reset mid-run.
 */

#ifndef STACKNOC_VALIDATE_GOLDEN_HH
#define STACKNOC_VALIDATE_GOLDEN_HH

#include <string>
#include <vector>

#include "mem/tech.hh"
#include "telemetry/trace.hh"

namespace stacknoc::validate {

/** One bank access reconstructed from the trace. */
struct GoldenAccess
{
    std::uint64_t pktId = 0;
    NodeId node = kInvalidNode; //!< bank node
    Cycle enqueuedAt = 0;
    bool isWrite = false;
    Cycle start = 0; //!< golden-model service start
    Cycle done = 0;  //!< golden-model completion
};

/** Outcome of a golden-model replay. */
struct GoldenReport
{
    /** Human-readable disagreements (empty when the models agree). */
    std::vector<std::string> mismatches;

    /** Every access, in golden service order. */
    std::vector<GoldenAccess> accesses;

    /** Golden total bank-occupied cycles (compare bank_busy_cycles). */
    std::uint64_t busyCycles = 0;

    /** Golden completion cycle of the last access. */
    Cycle lastDone = 0;

    bool ok() const { return mismatches.empty(); }
};

/**
 * Replay @p records (chronological, as returned by
 * telemetry::PacketTracer::snapshot()) through the golden model using
 * the service latencies of @p tech.
 */
GoldenReport replayBankTrace(
    const std::vector<telemetry::TraceRecord> &records,
    mem::CacheTech tech);

} // namespace stacknoc::validate

#endif // STACKNOC_VALIDATE_GOLDEN_HH
