#include "validate/golden.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/logging.hh"

namespace stacknoc::validate {

GoldenReport
replayBankTrace(const std::vector<telemetry::TraceRecord> &records,
                mem::CacheTech tech)
{
    const mem::BankTechParams &timing = mem::bankTech(tech);

    struct BankState
    {
        std::deque<GoldenAccess> queue;
        Cycle freeAt = 0;
    };
    std::unordered_map<NodeId, BankState> banks;

    GoldenReport report;
    auto mismatch = [&](std::string msg) {
        report.mismatches.push_back(std::move(msg));
    };

    for (const auto &r : records) {
        if (r.event == telemetry::TraceEvent::BankQueueEnter) {
            GoldenAccess acc;
            acc.pktId = r.packetId;
            acc.node = r.node;
            acc.enqueuedAt = r.cycle;
            acc.isWrite = (r.aux & 1) != 0;
            banks[r.node].queue.push_back(acc);
            continue;
        }
        if (r.event != telemetry::TraceEvent::BankServiceStart)
            continue;

        BankState &bank = banks[r.node];
        if (bank.queue.empty()) {
            mismatch(detail::format(
                "node %d: service start for pkt %llu at cycle %llu "
                "with an empty golden queue (trace truncated?)",
                r.node, static_cast<unsigned long long>(r.packetId),
                static_cast<unsigned long long>(r.cycle)));
            continue;
        }
        GoldenAccess acc = bank.queue.front();
        bank.queue.pop_front();
        if (acc.pktId != r.packetId) {
            mismatch(detail::format(
                "node %d: out-of-order service at cycle %llu: "
                "simulator served pkt %llu, golden FIFO front is "
                "pkt %llu",
                r.node, static_cast<unsigned long long>(r.cycle),
                static_cast<unsigned long long>(r.packetId),
                static_cast<unsigned long long>(acc.pktId)));
            // Resynchronise on the served packet so one reorder does
            // not cascade into a mismatch for every later access.
            auto it = std::find_if(
                bank.queue.begin(), bank.queue.end(),
                [&](const GoldenAccess &a) {
                    return a.pktId == r.packetId;
                });
            if (it == bank.queue.end())
                continue;
            acc = *it;
            bank.queue.erase(it);
        }
        acc.start = std::max(acc.enqueuedAt, bank.freeAt);
        const Cycle latency =
            acc.isWrite ? timing.writeCycles : timing.readCycles;
        acc.done = acc.start + latency;
        if (acc.start != r.cycle) {
            mismatch(detail::format(
                "node %d pkt %llu: simulator started service at cycle "
                "%llu, golden model predicts %llu (enqueued %llu, bank "
                "free %llu)",
                r.node, static_cast<unsigned long long>(acc.pktId),
                static_cast<unsigned long long>(r.cycle),
                static_cast<unsigned long long>(acc.start),
                static_cast<unsigned long long>(acc.enqueuedAt),
                static_cast<unsigned long long>(bank.freeAt)));
        }
        bank.freeAt = acc.done;
        report.busyCycles += latency;
        report.lastDone = std::max(report.lastDone, acc.done);
        report.accesses.push_back(acc);
    }

    return report;
}

} // namespace stacknoc::validate
