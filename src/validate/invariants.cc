#include "validate/invariants.hh"

#include <algorithm>
#include <bit>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"
#include "coherence/messages.hh"

namespace stacknoc::validate {

namespace {

/**
 * Visit every flit currently inside the network fabric: router input
 * buffers, router-to-router links, the NI local links, and NI ejection
 * buffers. @p at is the node whose buffers hold the flit (for link
 * flits: the receiver it is travelling toward).
 */
void
forEachFabricFlit(
    const noc::Network &net,
    const std::function<void(NodeId at, const noc::Flit &)> &fn)
{
    const noc::Topology &topo = net.topology();
    const int n = net.shape().totalNodes();
    for (NodeId id = 0; id < n; ++id) {
        net.router(id).forEachBufferedFlit(
            [&](noc::Dir, int, const noc::Flit &f) { fn(id, f); });
        for (int d = 1; d < noc::kNumDirs; ++d) {
            const noc::Link *link =
                topo.linkOut(id, static_cast<noc::Dir>(d));
            if (!link)
                continue;
            const NodeId nb = topo.neighbor(id, static_cast<noc::Dir>(d));
            link->data.forEachInFlight(
                [&](const noc::LinkFlit &lf) { fn(nb, lf.flit); });
        }
        net.niToRouterLink(id).data.forEachInFlight(
            [&](const noc::LinkFlit &lf) { fn(id, lf.flit); });
        net.routerToNiLink(id).data.forEachInFlight(
            [&](const noc::LinkFlit &lf) { fn(id, lf.flit); });
        static_cast<const noc::NetworkInterface &>(net.ni(id))
            .forEachEjectFlit(
                [&](int, const noc::Flit &f, bool) { fn(id, f); });
    }
}

std::string
describePacket(const noc::Packet &pkt)
{
    return detail::format(
        "pkt %llu cls=%s %d->%d bank=%d flits=%d",
        static_cast<unsigned long long>(pkt.id),
        noc::packetClassName(pkt.cls), pkt.src, pkt.dest, pkt.destBank,
        pkt.numFlits);
}

} // namespace

void
addStandardCheckers(ValidationHub &hub, const SystemView &view,
                    const ValidationConfig &config)
{
    panic_if(view.net == nullptr,
             "validation requires at least a network");
    hub.add(std::make_unique<PacketConservationChecker>(
        *view.net, config.stallThreshold));
    hub.add(std::make_unique<CreditConservationChecker>(*view.net));
    if (view.policy && view.regions && view.parents) {
        hub.add(std::make_unique<ParentHoldChecker>(
            *view.net, *view.policy, *view.regions, *view.parents,
            config.holdSlack));
    }
    if (!view.banks.empty() && view.regions) {
        hub.add(std::make_unique<BankAccountingChecker>(
            *view.net, view.banks, *view.regions, view.bankRequestCap,
            view.bankWriteCap));
    }
    if (!view.l1s.empty())
        hub.add(std::make_unique<MesiChecker>(view.l1s));
}

// --------------------------------------------------------------------
// PacketConservationChecker

PacketConservationChecker::PacketConservationChecker(
    const noc::Network &net, Cycle stall_threshold)
    : net_(net), stallThreshold_(stall_threshold)
{
}

void
PacketConservationChecker::onReset(Cycle)
{
    // Statistics were zeroed with packets still in flight: re-derive
    // the census-vs-counter offset on the next sweep.
    baselined_ = false;
    progressArmed_ = false;
}

void
PacketConservationChecker::check(Cycle now, std::vector<Violation> &out)
{
    struct Entry
    {
        const noc::Packet *pkt = nullptr;
        std::uint16_t seqMask = 0; //!< bit per observed flit seq
        bool inInjVc = false;      //!< still serialising at the source
    };
    std::unordered_map<std::uint64_t, Entry> census;

    auto fail = [&](std::string msg) {
        out.push_back(Violation{name(), now, std::move(msg)});
    };

    forEachFabricFlit(net_, [&](NodeId at, const noc::Flit &f) {
        Entry &e = census[f.pkt->id];
        e.pkt = f.pkt.get();
        const std::uint16_t bit =
            static_cast<std::uint16_t>(1u << f.seq);
        if (e.seqMask & bit) {
            fail(detail::format("duplicate flit seq %d at node %d: %s",
                                f.seq, at,
                                describePacket(*f.pkt).c_str()));
        }
        e.seqMask |= bit;
    });

    // Packets mid-serialisation at their source NI count as injected
    // the moment the head flit leaves (packets_injected semantics).
    const int n = net_.shape().totalNodes();
    for (NodeId id = 0; id < n; ++id) {
        static_cast<const noc::NetworkInterface &>(net_.ni(id))
            .forEachPendingPacket(
                [&](const noc::Packet &pkt, bool injected) {
                    if (!injected)
                        return;
                    Entry &e = census[pkt.id];
                    e.pkt = &pkt;
                    e.inInjVc = true;
                });
    }

    for (const auto &[id, e] : census) {
        (void)id;
        if (e.seqMask == 0)
            continue; // all sent flits already consumed downstream
        // Wormhole order: the surviving flits of a packet form one
        // contiguous seq range (earlier flits are consumed in order at
        // the destination). A hole means a dropped or reordered flit.
        const unsigned m = e.seqMask;
        const int lo = std::countr_zero(m);
        const int hi = std::bit_width(m) - 1;
        const std::uint16_t contiguous = static_cast<std::uint16_t>(
            ((1u << (hi - lo + 1)) - 1u) << lo);
        if (m != contiguous) {
            fail(detail::format("flit gap (mask 0x%x): %s", m,
                                describePacket(*e.pkt).c_str()));
        }
        if (!e.inInjVc && hi != e.pkt->numFlits - 1) {
            fail(detail::format(
                "tail flit missing (mask 0x%x): %s", m,
                describePacket(*e.pkt).c_str()));
        }
    }

    const auto *injected = net_.stats().findCounter("packets_injected");
    const auto *ejected = net_.stats().findCounter("packets_ejected");
    const auto *dropped = net_.stats().findCounter("packets_dropped");
    const auto *switched = net_.stats().findCounter("flits_switched");
    const std::int64_t inj =
        injected ? static_cast<std::int64_t>(injected->value()) : 0;
    // Packets dropped at an NI past the retransmit budget left the
    // fabric just as surely as ejected ones; they are accounted, not
    // lost, so the conservation identity folds them in.
    const std::int64_t ej =
        (ejected ? static_cast<std::int64_t>(ejected->value()) : 0) +
        (dropped ? static_cast<std::int64_t>(dropped->value()) : 0);
    const std::int64_t inFlight =
        static_cast<std::int64_t>(census.size());
    if (!baselined_) {
        // The census-vs-counter offset is fixed at attach/reset time:
        // in flight == baseline + injected - (ejected + dropped) ever
        // after.
        baseline_ = inFlight - inj + ej;
        baselined_ = true;
    } else if (inFlight != baseline_ + inj - ej) {
        fail(detail::format(
            "packet census %lld != baseline %lld + injected %lld - "
            "(ejected + dropped) %lld",
            static_cast<long long>(inFlight),
            static_cast<long long>(baseline_),
            static_cast<long long>(inj), static_cast<long long>(ej)));
    }

    // Progress: with packets in flight, injection, ejection or flit
    // switching must advance within the stall threshold.
    const std::uint64_t sw = switched ? switched->value() : 0;
    const bool moved = !progressArmed_ ||
                       sw != lastSwitched_ ||
                       static_cast<std::uint64_t>(inj) != lastInjected_ ||
                       static_cast<std::uint64_t>(ej) != lastEjected_;
    if (moved || inFlight == 0) {
        lastProgressAt_ = now;
        lastSwitched_ = sw;
        lastInjected_ = static_cast<std::uint64_t>(inj);
        lastEjected_ = static_cast<std::uint64_t>(ej);
        progressArmed_ = true;
    } else if (stallThreshold_ > 0 &&
               now - lastProgressAt_ >= stallThreshold_) {
        fail(detail::format(
            "no network progress for %llu cycles with %lld packet(s) "
            "in flight (possible deadlock)",
            static_cast<unsigned long long>(now - lastProgressAt_),
            static_cast<long long>(inFlight)));
        lastProgressAt_ = now; // report once per threshold window
    }
}

// --------------------------------------------------------------------
// CreditConservationChecker

CreditConservationChecker::CreditConservationChecker(
    const noc::Network &net)
    : net_(net)
{
}

void
CreditConservationChecker::check(Cycle now, std::vector<Violation> &out)
{
    const noc::Topology &topo = net_.topology();
    const noc::NocParams &params = net_.params();
    const int nodes = net_.shape().totalNodes();
    const int vcs = params.totalVcs();
    const int depth = params.vcDepth;

    auto fail = [&](std::string msg) {
        out.push_back(Violation{name(), now, std::move(msg)});
    };

    // One pass per router/NI to collect per-(port, VC) occupancy.
    std::vector<int> occ(static_cast<std::size_t>(
                             nodes * noc::kNumDirs * vcs),
                         0);
    std::vector<int> ejOcc(static_cast<std::size_t>(nodes * vcs), 0);
    auto occAt = [&](NodeId node, int dir, int vc) -> int & {
        return occ[static_cast<std::size_t>(
            (node * noc::kNumDirs + dir) * vcs + vc)];
    };
    for (NodeId id = 0; id < nodes; ++id) {
        net_.router(id).forEachBufferedFlit(
            [&](noc::Dir d, int vc, const noc::Flit &) {
                ++occAt(id, static_cast<int>(d), vc);
            });
        static_cast<const noc::NetworkInterface &>(net_.ni(id))
            .forEachEjectFlit([&](int vc, const noc::Flit &, bool) {
                ++ejOcc[static_cast<std::size_t>(id * vcs + vc)];
            });
    }

    std::vector<int> dataVc(static_cast<std::size_t>(vcs));
    std::vector<int> credVc(static_cast<std::size_t>(vcs));
    auto countLink = [&](const noc::Link &link) {
        std::fill(dataVc.begin(), dataVc.end(), 0);
        std::fill(credVc.begin(), credVc.end(), 0);
        link.data.forEachInFlight([&](const noc::LinkFlit &lf) {
            ++dataVc[static_cast<std::size_t>(lf.vc)];
        });
        link.credit.forEachInFlight([&](const noc::Credit &c) {
            ++credVc[static_cast<std::size_t>(c.vc)];
        });
    };
    auto checkVc = [&](const char *what, NodeId from, NodeId to,
                       int vc, int sender_credits, int buffer) {
        const int data = dataVc[static_cast<std::size_t>(vc)];
        const int cred = credVc[static_cast<std::size_t>(vc)];
        if (sender_credits < 0 || buffer < 0) {
            fail(detail::format(
                "%s %d->%d vc %d: negative credits (%d) or buffer (%d)",
                what, from, to, vc, sender_credits, buffer));
            return;
        }
        if (sender_credits + data + buffer + cred != depth) {
            fail(detail::format(
                "%s %d->%d vc %d: credits %d + data-in-flight %d + "
                "buffer %d + credits-in-flight %d != depth %d",
                what, from, to, vc, sender_credits, data, buffer, cred,
                depth));
        }
    };

    for (NodeId id = 0; id < nodes; ++id) {
        // Router-to-router links.
        for (int d = 1; d < noc::kNumDirs; ++d) {
            const noc::Dir dir = static_cast<noc::Dir>(d);
            const noc::Link *link = topo.linkOut(id, dir);
            if (!link)
                continue;
            const NodeId nb = topo.neighbor(id, dir);
            const int recvDir = static_cast<int>(noc::opposite(dir));
            countLink(*link);
            for (int vc = 0; vc < vcs; ++vc) {
                checkVc("link", id, nb, vc,
                        net_.router(id).outCredits(dir, vc),
                        occAt(nb, recvDir, vc));
            }
        }
        // NI -> router (injection side).
        countLink(net_.niToRouterLink(id));
        const auto &ni =
            static_cast<const noc::NetworkInterface &>(net_.ni(id));
        for (int vc = 0; vc < vcs; ++vc) {
            checkVc("ni-to-router", id, id, vc, ni.injCredits(vc),
                    occAt(id, static_cast<int>(noc::Dir::Local), vc));
        }
        // Router -> NI (ejection side).
        countLink(net_.routerToNiLink(id));
        for (int vc = 0; vc < vcs; ++vc) {
            checkVc("router-to-ni", id, id, vc,
                    net_.router(id).outCredits(noc::Dir::Local, vc),
                    ejOcc[static_cast<std::size_t>(id * vcs + vc)]);
        }
    }
}

// --------------------------------------------------------------------
// ParentHoldChecker

ParentHoldChecker::ParentHoldChecker(const noc::Network &net,
                                     const sttnoc::BankAwarePolicy &policy,
                                     const sttnoc::RegionMap &regions,
                                     const sttnoc::ParentMap &parents,
                                     Cycle hold_slack)
    : net_(net), policy_(policy), regions_(regions), parents_(parents),
      holdSlack_(hold_slack)
{
}

void
ParentHoldChecker::check(Cycle now, std::vector<Violation> &out)
{
    const sttnoc::SttAwareParams &p = policy_.params();

    auto fail = [&](std::string msg) {
        out.push_back(Violation{name(), now, std::move(msg)});
    };

    // Section 3.5 bound: a busy window opened at t extends at most to
    // t + path delay + congestion estimate + write service, and the
    // estimate saturates at congestionCap. Under fault injection the
    // hold-miss recovery contract grants horizonSlack() extra cycles
    // (adaptive margin plus NACK window re-opens, both clamped there);
    // without fault recovery the slack is zero and the bound is exact.
    for (BankId b = 0; b < regions_.numBanks(); ++b) {
        const Cycle horizon = policy_.busyUntil(b);
        const Cycle bound = now + policy_.pathDelay(b) +
                            p.congestionCap + p.writeServiceCycles +
                            policy_.horizonSlack();
        if (horizon > bound) {
            fail(detail::format(
                "bank %d busy horizon %llu exceeds now %llu + path %llu "
                "+ cap %llu + service %llu + recovery slack %llu",
                b, static_cast<unsigned long long>(horizon),
                static_cast<unsigned long long>(now),
                static_cast<unsigned long long>(policy_.pathDelay(b)),
                static_cast<unsigned long long>(p.congestionCap),
                static_cast<unsigned long long>(p.writeServiceCycles),
                static_cast<unsigned long long>(policy_.horizonSlack())));
        }
    }

    // Held-packet sanity. Each packet is diagnosed once per sweep.
    std::unordered_set<std::uint64_t> seen;
    forEachFabricFlit(net_, [&](NodeId at, const noc::Flit &f) {
        const noc::Packet &pkt = *f.pkt;
        if (pkt.firstHeldAt == kCycleNever)
            return;
        if (!seen.insert(pkt.id).second)
            return;
        if (p.delayMode != sttnoc::DelayMode::Hold) {
            fail(detail::format("held packet outside Hold mode: %s",
                                describePacket(pkt).c_str()));
            return;
        }
        if (pkt.cls != noc::PacketClass::StoreWrite &&
            pkt.cls != noc::PacketClass::WritebackReq) {
            fail(detail::format("held packet of unholdable class: %s",
                                describePacket(pkt).c_str()));
            return;
        }
        if (pkt.destBank < 0 || pkt.destBank >= regions_.numBanks()) {
            fail(detail::format("held packet without a target bank: %s",
                                describePacket(pkt).c_str()));
            return;
        }
        if (pkt.firstHeldAt > now) {
            fail(detail::format(
                "hold start %llu in the future (now %llu): %s",
                static_cast<unsigned long long>(pkt.firstHeldAt),
                static_cast<unsigned long long>(now),
                describePacket(pkt).c_str()));
            return;
        }
        if (at == parents_.parentOf(pkt.destBank) &&
            now - pkt.firstHeldAt > p.holdCap + holdSlack_) {
            fail(detail::format(
                "packet held at parent %d for %llu cycles (cap %llu + "
                "slack %llu): %s",
                at,
                static_cast<unsigned long long>(now - pkt.firstHeldAt),
                static_cast<unsigned long long>(p.holdCap),
                static_cast<unsigned long long>(holdSlack_),
                describePacket(pkt).c_str()));
        }
    });
}

// --------------------------------------------------------------------
// BankAccountingChecker

BankAccountingChecker::BankAccountingChecker(
    const noc::Network &net,
    std::vector<const coherence::L2Bank *> banks,
    const sttnoc::RegionMap &regions, int request_cap, int write_cap)
    : net_(net), banks_(std::move(banks)), regions_(regions),
      requestCap_(request_cap), writeCap_(write_cap)
{
}

void
BankAccountingChecker::check(Cycle now, std::vector<Violation> &out)
{
    auto fail = [&](std::string msg) {
        out.push_back(Violation{name(), now, std::move(msg)});
    };

    for (std::size_t i = 0; i < banks_.size(); ++i) {
        const coherence::L2Bank &bank = *banks_[i];
        const BankId b = static_cast<BankId>(i);
        int req = 0;
        int wr = 0;
        bank.countAdmitted(req, wr);

        // Packets the NI has committed (tryAccept succeeded, counters
        // charged) but not yet fully reassembled and delivered.
        const NodeId node = regions_.nodeOfBank(b);
        net_.ni(node).forEachCommittedPacket(
            [&](int, const noc::Packet &pkt) {
                switch (pkt.cls) {
                  case noc::PacketClass::ReadReq:
                  case noc::PacketClass::WriteReq:
                    ++req;
                    break;
                  case noc::PacketClass::StoreWrite:
                  case noc::PacketClass::WritebackReq:
                    ++wr;
                    break;
                  default:
                    break;
                }
            });

        const int ar = bank.admittedRequests();
        const int aw = bank.admittedWrites();
        if (ar != req) {
            fail(detail::format(
                "bank %d admitted-request counter %d != census %d "
                "(%zu TBEs)",
                b, ar, req, bank.tbeCount()));
        }
        if (aw != wr) {
            fail(detail::format(
                "bank %d admitted-write counter %d != census %d "
                "(%zu TBEs)",
                b, aw, wr, bank.tbeCount()));
        }
        if (ar < 0 || ar > requestCap_) {
            fail(detail::format(
                "bank %d admitted-request counter %d outside [0, %d]",
                b, ar, requestCap_));
        }
        if (aw < 0 || aw > writeCap_) {
            fail(detail::format(
                "bank %d admitted-write counter %d outside [0, %d]", b,
                aw, writeCap_));
        }
    }
}

// --------------------------------------------------------------------
// MesiChecker

MesiChecker::MesiChecker(std::vector<const coherence::L1Cache *> l1s)
    : l1s_(std::move(l1s))
{
}

void
MesiChecker::check(Cycle now, std::vector<Violation> &out)
{
    using coherence::L1State;

    auto fail = [&](std::string msg) {
        out.push_back(Violation{name(), now, std::move(msg)});
    };

    struct Holders
    {
        std::vector<std::pair<CoreId, L1State>> owners;  //!< M / E
        std::vector<std::pair<CoreId, L1State>> sharers; //!< S / SM
    };
    std::unordered_map<BlockAddr, Holders> blocks;

    for (const coherence::L1Cache *l1 : l1s_) {
        const CoreId core = l1->core();
        l1->tags().forEachValid([&](const cache::TagEntry &e) {
            if (e.state >
                static_cast<std::uint8_t>(L1State::SM) ||
                e.state == static_cast<std::uint8_t>(L1State::I)) {
                fail(detail::format(
                    "L1 %d block %llu: illegal state byte %u on a "
                    "valid entry",
                    core, static_cast<unsigned long long>(e.addr),
                    static_cast<unsigned>(e.state)));
                return;
            }
            const L1State st = static_cast<L1State>(e.state);
            Holders &h = blocks[e.addr];
            if (st == L1State::M || st == L1State::E)
                h.owners.emplace_back(core, st);
            else if (st == L1State::S || st == L1State::SM)
                h.sharers.emplace_back(core, st);
        });
    }

    for (const auto &[addr, h] : blocks) {
        if (h.owners.size() > 1) {
            fail(detail::format(
                "block %llu has %zu owners (cores %d/%s and %d/%s)",
                static_cast<unsigned long long>(addr), h.owners.size(),
                h.owners[0].first,
                coherence::l1StateName(h.owners[0].second),
                h.owners[1].first,
                coherence::l1StateName(h.owners[1].second)));
        }
        if (h.owners.size() == 1 && !h.sharers.empty()) {
            fail(detail::format(
                "block %llu owned %s by core %d but shared %s by "
                "core %d",
                static_cast<unsigned long long>(addr),
                coherence::l1StateName(h.owners[0].second),
                h.owners[0].first,
                coherence::l1StateName(h.sharers[0].second),
                h.sharers[0].first));
        }
    }
}

} // namespace stacknoc::validate
