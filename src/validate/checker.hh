/**
 * @file
 * The validation layer's spine: checkers, violations, and the hub that
 * sweeps every registered checker on a period and fails fast with a
 * cycle-stamped diagnostic dump.
 *
 * Checkers are strict observers: they read simulator state through
 * const accessors only and never mutate it, so enabling validation
 * cannot change simulated behaviour — the determinism seed sweep proves
 * runs stay bit-identical with checkers on and off.
 */

#ifndef STACKNOC_VALIDATE_CHECKER_HH
#define STACKNOC_VALIDATE_CHECKER_HH

#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "telemetry/probe.hh"

namespace stacknoc::validate {

/** One invariant violation, stamped with the cycle it was detected at. */
struct Violation
{
    std::string checker; //!< Checker::name() of the detector
    Cycle cycle = 0;     //!< cycle the sweep ran at
    std::string message; //!< human-readable diagnosis
};

/** Validation layer configuration. */
struct ValidationConfig
{
    /** Sweep period in cycles (0 disables periodic sweeps). */
    Cycle period = 1;

    /**
     * Abort (panic) on the first violating sweep after dumping
     * diagnostics. Tests that inspect violations disable this.
     */
    bool failFast = true;

    /**
     * Declare a deadlock when packets are in flight but no flit is
     * switched, injected or ejected for this many cycles. Generous:
     * every legitimate wait in the system (DRAM access, bank write
     * burst, hold cap) is at least an order of magnitude shorter.
     */
    Cycle stallThreshold = 5000;

    /**
     * Tolerated post-release arbitration delay for a held packet still
     * sitting at its parent router beyond the starvation cap. The cap
     * guarantees eligibility, not a switch grant: a released write can
     * keep losing arbitrations to higher-priority classes.
     */
    Cycle holdSlack = 2000;

    /** Retained violations when failFast is off (oldest kept). */
    std::size_t maxViolations = 256;

    /** Trace records included in the diagnostic dump. */
    std::size_t dumpTraceRecords = 32;
};

/** One runtime invariant. check() appends violations; it never throws. */
class Checker
{
  public:
    virtual ~Checker() = default;

    /** Stable kebab-case identifier, used in violation reports. */
    virtual const char *name() const = 0;

    /** Evaluate the invariant at cycle @p now. */
    virtual void check(Cycle now, std::vector<Violation> &out) = 0;

    /** Statistics were reset (end of warm-up): re-arm baselines. */
    virtual void onReset(Cycle now) { (void)now; }
};

/**
 * Owns the checkers and runs them as a telemetry probe. On a violating
 * sweep it writes a cycle-stamped diagnostic dump (the violations plus
 * the tail of the packet-lifecycle trace ring, when a tracer is
 * installed) to stderr, then panics when failFast is set.
 */
class ValidationHub : public telemetry::Probe
{
  public:
    explicit ValidationHub(const ValidationConfig &config);

    /** Register a checker (ownership transferred). */
    void add(std::unique_ptr<Checker> checker);

    void onCycle(Cycle now) override;
    void onReset(Cycle now) override;

    /** Run one sweep immediately, regardless of the period. */
    void checkNow(Cycle now);

    const ValidationConfig &config() const { return config_; }

    /** Violations accumulated so far (empty while the run is clean). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Sweeps executed. */
    std::uint64_t sweeps() const { return sweeps_; }

    std::size_t checkerCount() const { return checkers_.size(); }

  private:
    /** Dump @p fresh and the trace-ring tail to stderr. */
    void report(const std::vector<Violation> &fresh) const;

    ValidationConfig config_;
    std::vector<std::unique_ptr<Checker>> checkers_;
    std::vector<Violation> violations_;
    std::uint64_t sweeps_ = 0;
};

} // namespace stacknoc::validate

#endif // STACKNOC_VALIDATE_CHECKER_HH
