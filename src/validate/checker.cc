#include "validate/checker.hh"

#include <cstdio>

#include "common/logging.hh"
#include "noc/packet.hh"
#include "telemetry/trace.hh"

namespace stacknoc::validate {

ValidationHub::ValidationHub(const ValidationConfig &config)
    : config_(config)
{
}

void
ValidationHub::add(std::unique_ptr<Checker> checker)
{
    panic_if(checker == nullptr, "ValidationHub: null checker");
    checkers_.push_back(std::move(checker));
}

void
ValidationHub::onCycle(Cycle now)
{
    if (config_.period == 0 || now % config_.period != 0)
        return;
    checkNow(now);
}

void
ValidationHub::onReset(Cycle now)
{
    for (auto &c : checkers_)
        c->onReset(now);
}

void
ValidationHub::checkNow(Cycle now)
{
    ++sweeps_;
    std::vector<Violation> fresh;
    for (auto &c : checkers_)
        c->check(now, fresh);
    if (fresh.empty())
        return;

    report(fresh);
    const std::string summary = detail::format(
        "validation failed at cycle %llu: %zu violation(s); "
        "first: [%s] %s",
        static_cast<unsigned long long>(now), fresh.size(),
        fresh.front().checker.c_str(), fresh.front().message.c_str());
    for (auto &v : fresh) {
        if (violations_.size() < config_.maxViolations)
            violations_.push_back(std::move(v));
    }
    if (config_.failFast)
        panic("%s", summary.c_str());
}

void
ValidationHub::report(const std::vector<Violation> &fresh) const
{
    std::fprintf(stderr, "=== stacknoc validation failure ===\n");
    for (const auto &v : fresh) {
        std::fprintf(stderr, "[cycle %llu] %s: %s\n",
                     static_cast<unsigned long long>(v.cycle),
                     v.checker.c_str(), v.message.c_str());
    }

    // Cycle-stamped context: the tail of the packet-lifecycle trace
    // ring, when the telemetry tracer is installed.
    if (auto *t = telemetry::tracer()) {
        const auto records = t->snapshot();
        const std::size_t n =
            std::min(records.size(), config_.dumpTraceRecords);
        std::fprintf(stderr,
                     "last %zu trace record(s), oldest first:\n", n);
        for (std::size_t i = records.size() - n; i < records.size();
             ++i) {
            const auto &r = records[i];
            std::fprintf(
                stderr,
                "  cycle=%llu pkt=%llu cls=%s event=%s node=%d "
                "aux=%lld\n",
                static_cast<unsigned long long>(r.cycle),
                static_cast<unsigned long long>(r.packetId),
                noc::packetClassName(
                    static_cast<noc::PacketClass>(r.cls)),
                telemetry::traceEventName(r.event), r.node,
                static_cast<long long>(r.aux));
        }
    } else {
        std::fprintf(stderr,
                     "(no packet tracer installed; no trace context)\n");
    }
    std::fflush(stderr);
}

} // namespace stacknoc::validate
