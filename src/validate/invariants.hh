/**
 * @file
 * The concrete runtime invariant checkers:
 *
 *  - PacketConservationChecker: every injected packet is either ejected
 *    or accounted for by a full census of router buffers, link
 *    channels, NI injection VCs and NI ejection buffers; no flit is
 *    duplicated or dropped; the network keeps making progress.
 *  - CreditConservationChecker: on every link and VC, sender credits +
 *    flits in flight + downstream buffer occupancy + credits in flight
 *    exactly equals the VC depth (which implies non-negativity and
 *    bounded buffers).
 *  - ParentHoldChecker: the STT-RAM-aware busy windows obey the
 *    paper's bound (path delay + congestion estimate + write service)
 *    and held packets are well-formed and released within the
 *    starvation cap.
 *  - BankAccountingChecker: each L2 bank's admission busy-counters
 *    agree with a census of its TBEs, blocked queues and
 *    committed-but-undelivered packets at its network interface.
 *  - MesiChecker: across all L1 tag arrays, every block has at most
 *    one owner (M/E) and owners exclude sharers (S/SM).
 *
 * All checkers observe through const accessors only.
 */

#ifndef STACKNOC_VALIDATE_INVARIANTS_HH
#define STACKNOC_VALIDATE_INVARIANTS_HH

#include <vector>

#include "noc/network.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "coherence/l1_cache.hh"
#include "coherence/l2_bank.hh"
#include "validate/checker.hh"

namespace stacknoc::validate {

/**
 * Read-only handles on the pieces of a system that checkers inspect.
 * Optional members (null / empty) suppress the checkers needing them,
 * so partial systems (unit-test fixtures) validate what they have.
 */
struct SystemView
{
    const noc::Network *net = nullptr;
    std::vector<const coherence::L1Cache *> l1s;
    std::vector<const coherence::L2Bank *> banks;
    const sttnoc::BankAwarePolicy *policy = nullptr;
    const sttnoc::RegionMap *regions = nullptr;
    const sttnoc::ParentMap *parents = nullptr;
    int bankRequestCap = 8;
    int bankWriteCap = 32;
};

/** Register every checker the view supports on @p hub. */
void addStandardCheckers(ValidationHub &hub, const SystemView &view,
                         const ValidationConfig &config);

/** Packet conservation, duplication/drop detection, and progress. */
class PacketConservationChecker : public Checker
{
  public:
    PacketConservationChecker(const noc::Network &net,
                              Cycle stall_threshold);

    const char *name() const override { return "packet-conservation"; }
    void check(Cycle now, std::vector<Violation> &out) override;
    void onReset(Cycle now) override;

  private:
    const noc::Network &net_;
    Cycle stallThreshold_;

    /** in-flight census minus (injected - ejected) at baseline time. */
    std::int64_t baseline_ = 0;
    bool baselined_ = false;

    std::uint64_t lastInjected_ = 0;
    std::uint64_t lastEjected_ = 0;
    std::uint64_t lastSwitched_ = 0;
    Cycle lastProgressAt_ = 0;
    bool progressArmed_ = false;
};

/** Per-link, per-VC credit/buffer conservation. */
class CreditConservationChecker : public Checker
{
  public:
    explicit CreditConservationChecker(const noc::Network &net);

    const char *name() const override { return "credit-conservation"; }
    void check(Cycle now, std::vector<Violation> &out) override;

  private:
    const noc::Network &net_;
};

/** STT-RAM-aware busy-window and held-packet soundness. */
class ParentHoldChecker : public Checker
{
  public:
    ParentHoldChecker(const noc::Network &net,
                      const sttnoc::BankAwarePolicy &policy,
                      const sttnoc::RegionMap &regions,
                      const sttnoc::ParentMap &parents, Cycle hold_slack);

    const char *name() const override { return "parent-hold"; }
    void check(Cycle now, std::vector<Violation> &out) override;

  private:
    const noc::Network &net_;
    const sttnoc::BankAwarePolicy &policy_;
    const sttnoc::RegionMap &regions_;
    const sttnoc::ParentMap &parents_;
    Cycle holdSlack_;
};

/** L2 admission busy-counters against a transaction census. */
class BankAccountingChecker : public Checker
{
  public:
    BankAccountingChecker(const noc::Network &net,
                          std::vector<const coherence::L2Bank *> banks,
                          const sttnoc::RegionMap &regions,
                          int request_cap, int write_cap);

    const char *name() const override { return "bank-accounting"; }
    void check(Cycle now, std::vector<Violation> &out) override;

  private:
    const noc::Network &net_;
    std::vector<const coherence::L2Bank *> banks_;
    const sttnoc::RegionMap &regions_;
    int requestCap_;
    int writeCap_;
};

/** MESI state-pair legality across all L1 tag arrays. */
class MesiChecker : public Checker
{
  public:
    explicit MesiChecker(std::vector<const coherence::L1Cache *> l1s);

    const char *name() const override { return "mesi-legality"; }
    void check(Cycle now, std::vector<Violation> &out) override;

  private:
    std::vector<const coherence::L1Cache *> l1s_;
};

} // namespace stacknoc::validate

#endif // STACKNOC_VALIDATE_INVARIANTS_HH
