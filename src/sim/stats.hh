/**
 * @file
 * A small statistics package: scalar counters, averages, arbitrary-edge
 * distributions, and log2-bucketed percentile histograms, organised into
 * named groups.
 */

#ifndef STACKNOC_SIM_STATS_HH
#define STACKNOC_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stacknoc::stats {

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** An accumulating mean (sum / count). */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A distribution over user-supplied bin edges.
 *
 * Edges {e0, e1, ..., en} define bins [0,e0), [e0,e1), ..., [en,inf).
 * Figure 3 of the paper uses edges {16, 33, 66, 99, 132, 165}.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::vector<std::uint64_t> edges);

    void sample(std::uint64_t v, std::uint64_t weight = 1);

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** @return fraction of samples in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Human-readable label of bin @p i, e.g. "[16,33)" or "165+". */
    std::string binLabel(std::size_t i) const;

    const std::vector<std::uint64_t> &edges() const { return edges_; }

    void reset();

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A log2-bucketed histogram: constant-size, O(1) sampling, approximate
 * percentiles. Bucket 0 holds the value 0; bucket i >= 1 holds values in
 * [2^(i-1), 2^i - 1]. Exact minimum, maximum and sum are tracked on the
 * side, so mean() is exact and percentile() is clamped to observed
 * bounds.
 */
class Histogram
{
  public:
    /** Buckets 0..64: value 0 plus one bucket per bit width. */
    static constexpr std::size_t kNumBuckets = 65;

    void sample(std::uint64_t v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const;
    std::uint64_t minValue() const { return count_ ? min_ : 0; }
    std::uint64_t maxValue() const { return max_; }

    /**
     * Rank-based percentile for @p p in [0, 1], linearly interpolated
     * inside the containing log2 bucket and clamped to the observed
     * [min, max]. Exact when the bucket holds a single value (0, 1) or
     * when p selects the extremes.
     */
    double percentile(double p) const;

    /** @return the bucket a value falls into. */
    static std::size_t bucketOf(std::uint64_t v);

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t bucketLo(std::size_t i);

    /** Inclusive upper bound of bucket @p i. */
    static std::uint64_t bucketHi(std::size_t i);

    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_.at(i);
    }

    void reset();

  private:
    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics. Groups own their stats; components
 * hold references obtained at construction time.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &stat_name);
    Average &average(const std::string &stat_name);
    Distribution &distribution(const std::string &stat_name,
                               std::vector<std::uint64_t> edges);
    Histogram &histogram(const std::string &stat_name);

    /** Lookup without creating; returns nullptr when absent. */
    const Counter *findCounter(const std::string &stat_name) const;
    const Average *findAverage(const std::string &stat_name) const;
    const Distribution *findDistribution(const std::string &stat_name) const;
    const Histogram *findHistogram(const std::string &stat_name) const;

    const std::string &name() const { return name_; }

    /** Pretty-print every stat in the group. */
    void dump(std::ostream &os) const;

    /** Reset every stat in the group to zero. */
    void reset();

    // Read-only iteration, used by the telemetry exporters.
    const std::map<std::string, Counter> &allCounters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &allAverages() const
    {
        return averages_;
    }
    const std::map<std::string, Distribution> &allDistributions() const
    {
        return distributions_;
    }
    const std::map<std::string, Histogram> &allHistograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace stacknoc::stats

#endif // STACKNOC_SIM_STATS_HH
