/**
 * @file
 * A small statistics package: scalar counters, averages, arbitrary-edge
 * distributions, and log2-bucketed percentile histograms, organised into
 * named groups.
 */

#ifndef STACKNOC_SIM_STATS_HH
#define STACKNOC_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stacknoc::stats {

class Counter;
class Average;
class Distribution;
class Histogram;

/**
 * A deferred statistics-mutation log, the mechanism that keeps shared
 * stat objects (one Counter referenced by all 64 routers, one Average
 * sampled by every NI, ...) both data-race free and bit-identical under
 * the sharded parallel execution engine.
 *
 * Each worker thread installs one TickLog via setTickLog(); while
 * installed, every Counter::inc / Average::sample / Histogram::sample /
 * Distribution::sample records an entry tagged with the ordinal of the
 * component currently ticking (beginComponent()) instead of mutating the
 * stat. After the phase barrier the engine merges all per-thread logs by
 * component ordinal — the exact order the sequential engine would have
 * applied them in — and replays them single-threaded. Integer counters
 * would be order-insensitive anyway, but Average accumulates a double
 * sum, where addition order changes the rounding; ordinal-ordered replay
 * makes even those bits identical.
 *
 * With no log installed (the default) every stat mutates immediately.
 */
class TickLog
{
  public:
    /** Tag subsequent entries with component ordinal @p ordinal. */
    void beginComponent(std::uint32_t ordinal) { ordinal_ = ordinal; }

    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }
    std::size_t size() const { return entries_.size(); }

    void
    counterInc(Counter *c, std::uint64_t n)
    {
        entries_.push_back({ordinal_, Op::CounterInc, c, n, 0});
    }

    void
    counterSet(Counter *c, std::uint64_t v)
    {
        entries_.push_back({ordinal_, Op::CounterSet, c, v, 0});
    }

    void averageSample(Average *a, double v);

    void
    distributionSample(Distribution *d, std::uint64_t v, std::uint64_t w)
    {
        entries_.push_back({ordinal_, Op::DistSample, d, v, w});
    }

    void
    histogramSample(Histogram *h, std::uint64_t v, std::uint64_t w)
    {
        entries_.push_back({ordinal_, Op::HistSample, h, v, w});
    }

    /**
     * Merge @p n logs by component ordinal and apply them. Must run with
     * no TickLog installed on the calling thread (entries are replayed
     * through the ordinary stat mutators). Each component ordinal may
     * appear in at most one log (a component ticks on exactly one
     * shard), so the merge needs no tie-breaking.
     */
    static void applyInOrder(TickLog *const *logs, std::size_t n);

  private:
    enum class Op : std::uint8_t {
        CounterInc,
        CounterSet,
        AvgSample,
        DistSample,
        HistSample,
    };

    struct Entry
    {
        std::uint32_t ordinal;
        Op op;
        void *target;
        std::uint64_t a; //!< count / value / bit-cast double
        std::uint64_t b; //!< weight
    };

    static void apply(const Entry &e);

    std::vector<Entry> entries_;
    std::uint32_t ordinal_ = 0;
};

namespace detail {
inline thread_local TickLog *t_tick_log = nullptr;
} // namespace detail

/** Install @p log as this thread's deferral target (null = immediate). */
inline void
setTickLog(TickLog *log)
{
    detail::t_tick_log = log;
}

/** @return this thread's installed deferral log, or null. */
inline TickLog *
tickLog()
{
    return detail::t_tick_log;
}

/** A monotonically growing scalar statistic. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        if (TickLog *log = tickLog()) {
            log->counterInc(this, n);
            return;
        }
        value_ += n;
    }

    void
    set(std::uint64_t v)
    {
        if (TickLog *log = tickLog()) {
            log->counterSet(this, v);
            return;
        }
        value_ = v;
    }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** An accumulating mean (sum / count). */
class Average
{
  public:
    void
    sample(double v)
    {
        if (TickLog *log = tickLog()) {
            log->averageSample(this, v);
            return;
        }
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * A distribution over user-supplied bin edges.
 *
 * Edges {e0, e1, ..., en} define bins [0,e0), [e0,e1), ..., [en,inf).
 * Figure 3 of the paper uses edges {16, 33, 66, 99, 132, 165}.
 */
class Distribution
{
  public:
    Distribution() = default;
    explicit Distribution(std::vector<std::uint64_t> edges);

    void sample(std::uint64_t v, std::uint64_t weight = 1);

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** @return fraction of samples in bin @p i (0 when empty). */
    double binFraction(std::size_t i) const;

    /** Human-readable label of bin @p i, e.g. "[16,33)" or "165+". */
    std::string binLabel(std::size_t i) const;

    const std::vector<std::uint64_t> &edges() const { return edges_; }

    void reset();

  private:
    std::vector<std::uint64_t> edges_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/**
 * A log2-bucketed histogram: constant-size, O(1) sampling, approximate
 * percentiles. Bucket 0 holds the value 0; bucket i >= 1 holds values in
 * [2^(i-1), 2^i - 1]. Exact minimum, maximum and sum are tracked on the
 * side, so mean() is exact and percentile() is clamped to observed
 * bounds.
 */
class Histogram
{
  public:
    /** Buckets 0..64: value 0 plus one bucket per bit width. */
    static constexpr std::size_t kNumBuckets = 65;

    void sample(std::uint64_t v, std::uint64_t weight = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    double mean() const;
    std::uint64_t minValue() const { return count_ ? min_ : 0; }
    std::uint64_t maxValue() const { return max_; }

    /**
     * Rank-based percentile for @p p in [0, 1], linearly interpolated
     * inside the containing log2 bucket and clamped to the observed
     * [min, max]. Exact when the bucket holds a single value (0, 1) or
     * when p selects the extremes.
     */
    double percentile(double p) const;

    /** @return the bucket a value falls into. */
    static std::size_t bucketOf(std::uint64_t v);

    /** Inclusive lower bound of bucket @p i. */
    static std::uint64_t bucketLo(std::size_t i);

    /** Inclusive upper bound of bucket @p i. */
    static std::uint64_t bucketHi(std::size_t i);

    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_.at(i);
    }

    void reset();

  private:
    std::array<std::uint64_t, kNumBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of statistics. Groups own their stats; components
 * hold references obtained at construction time.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Counter &counter(const std::string &stat_name);
    Average &average(const std::string &stat_name);
    Distribution &distribution(const std::string &stat_name,
                               std::vector<std::uint64_t> edges);
    Histogram &histogram(const std::string &stat_name);

    /** Lookup without creating; returns nullptr when absent. */
    const Counter *findCounter(const std::string &stat_name) const;
    const Average *findAverage(const std::string &stat_name) const;
    const Distribution *findDistribution(const std::string &stat_name) const;
    const Histogram *findHistogram(const std::string &stat_name) const;

    const std::string &name() const { return name_; }

    /** Pretty-print every stat in the group. */
    void dump(std::ostream &os) const;

    /** Reset every stat in the group to zero. */
    void reset();

    // Read-only iteration, used by the telemetry exporters.
    const std::map<std::string, Counter> &allCounters() const
    {
        return counters_;
    }
    const std::map<std::string, Average> &allAverages() const
    {
        return averages_;
    }
    const std::map<std::string, Distribution> &allDistributions() const
    {
        return distributions_;
    }
    const std::map<std::string, Histogram> &allHistograms() const
    {
        return histograms_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Distribution> distributions_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace stacknoc::stats

#endif // STACKNOC_SIM_STATS_HH
