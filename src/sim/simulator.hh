/**
 * @file
 * The cycle-driven simulation kernel.
 */

#ifndef STACKNOC_SIM_SIMULATOR_HH
#define STACKNOC_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/ticking.hh"

namespace stacknoc {

/**
 * Owns the global clock and the registry of Ticking components.
 *
 * Components are ticked in registration order; because all communication
 * goes through Channels of latency >= 1, the order is not observable.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a component. The Simulator does not take ownership. */
    void add(Ticking *component);

    /** Advance the clock by @p cycles. */
    void run(Cycle cycles);

    /** Advance one cycle. */
    void step();

    /** @return the next cycle to be evaluated (cycles completed so far). */
    Cycle now() const { return now_; }

    /** @return number of registered components. */
    std::size_t componentCount() const { return components_.size(); }

    /**
     * Register a callback invoked after each cycle (used by probes and
     * samplers). Callbacks receive the just-completed cycle.
     */
    void onCycleEnd(std::function<void(Cycle)> cb);

  private:
    Cycle now_ = 0;
    std::vector<Ticking *> components_;
    std::vector<std::function<void(Cycle)>> cycle_end_callbacks_;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_SIMULATOR_HH
