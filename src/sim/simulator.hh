/**
 * @file
 * The cycle-driven simulation kernel.
 */

#ifndef STACKNOC_SIM_SIMULATOR_HH
#define STACKNOC_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/ticking.hh"

namespace stacknoc {

namespace snapshot {
class StateIO;
} // namespace snapshot

/**
 * Owns the global clock and the registry of Ticking components.
 *
 * Components are ticked in registration order; because all communication
 * goes through Channels of latency >= 1, the order is not observable.
 *
 * Each component carries an affinity key chosen by whoever builds the
 * system: components sharing a key are guaranteed to tick on the same
 * shard of the parallel execution engine (in registration order relative
 * to each other), and kSerialAffinity marks components that must tick
 * single-threaded after the parallel phase (they read live state of
 * other components, e.g. the RCA aggregation fabric). The sequential
 * engine and the historical step()/run() entry points ignore affinities
 * entirely.
 */
class Simulator
{
  public:
    /** Affinity of components that must tick in the serial phase. */
    static constexpr int kSerialAffinity = -1;

    Simulator() = default;

    /**
     * Register a component. The Simulator does not take ownership.
     * Components registered without an affinity are serial-phase.
     */
    void add(Ticking *component, int affinity = kSerialAffinity);

    /** Advance the clock by @p cycles (sequential, in-registration-order). */
    void run(Cycle cycles);

    /** Advance one cycle. */
    void step();

    /** @return the next cycle to be evaluated (cycles completed so far). */
    Cycle now() const { return now_; }

    /** @return number of registered components. */
    std::size_t componentCount() const { return components_.size(); }

    /**
     * Register a callback invoked after each cycle (used by probes and
     * samplers). Callbacks receive the just-completed cycle.
     */
    void onCycleEnd(std::function<void(Cycle)> cb);

    // --- Execution-engine interface -----------------------------------

    /** Registered components, in registration (= ordinal) order. */
    const std::vector<Ticking *> &components() const { return components_; }

    /** Affinity key of component ordinal @p i. */
    int affinity(std::size_t i) const { return affinities_.at(i); }

    /**
     * Bumped on every add(); engines snapshot it when they build a
     * shard plan and panic if the registry changed underneath them.
     */
    std::uint64_t registryVersion() const { return version_; }

    /**
     * Finish the current cycle on behalf of an engine that ticked the
     * components itself: run the cycle-end callbacks, then advance the
     * clock.
     */
    void completeCycle();

  private:
    friend class snapshot::StateIO; //!< checkpoint restore of the clock
    Cycle now_ = 0;
    std::vector<Ticking *> components_;
    std::vector<int> affinities_;
    std::uint64_t version_ = 0;
    std::vector<std::function<void(Cycle)>> cycle_end_callbacks_;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_SIMULATOR_HH
