#include "sim/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace stacknoc::stats {

Distribution::Distribution(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0)
{
    for (std::size_t i = 1; i < edges_.size(); ++i)
        panic_if(edges_[i] <= edges_[i - 1],
                 "Distribution edges must be strictly increasing");
}

void
Distribution::sample(std::uint64_t v, std::uint64_t weight)
{
    std::size_t bin = edges_.size();
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (v < edges_[i]) {
            bin = i;
            break;
        }
    }
    counts_[bin] += weight;
    total_ += weight;
}

double
Distribution::binFraction(std::size_t i) const
{
    return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
}

std::string
Distribution::binLabel(std::size_t i) const
{
    if (i == edges_.size())
        return std::to_string(edges_.empty() ? 0 : edges_.back()) + "+";
    const std::uint64_t lo = i == 0 ? 0 : edges_[i - 1];
    return "[" + std::to_string(lo) + "," + std::to_string(edges_[i]) + ")";
}

void
Distribution::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
}

Counter &
Group::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Average &
Group::average(const std::string &stat_name)
{
    return averages_[stat_name];
}

Distribution &
Group::distribution(const std::string &stat_name,
                    std::vector<std::uint64_t> edges)
{
    auto it = distributions_.find(stat_name);
    if (it == distributions_.end()) {
        it = distributions_.emplace(stat_name, Distribution(std::move(edges)))
                 .first;
    }
    return it->second;
}

const Counter *
Group::findCounter(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Average *
Group::findAverage(const std::string &stat_name) const
{
    auto it = averages_.find(stat_name);
    return it == averages_.end() ? nullptr : &it->second;
}

const Distribution *
Group::findDistribution(const std::string &stat_name) const
{
    auto it = distributions_.find(stat_name);
    return it == distributions_.end() ? nullptr : &it->second;
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters_)
        os << name_ << "." << n << " " << c.value() << "\n";
    for (const auto &[n, a] : averages_) {
        os << name_ << "." << n << " mean=" << a.mean()
           << " count=" << a.count() << "\n";
    }
    for (const auto &[n, d] : distributions_) {
        os << name_ << "." << n << " total=" << d.total();
        for (std::size_t i = 0; i < d.numBins(); ++i) {
            os << " " << d.binLabel(i) << "="
               << std::setprecision(4) << d.binFraction(i) * 100.0 << "%";
        }
        os << "\n";
    }
}

void
Group::reset()
{
    for (auto &[n, c] : counters_)
        c.reset();
    for (auto &[n, a] : averages_)
        a.reset();
    for (auto &[n, d] : distributions_)
        d.reset();
}

} // namespace stacknoc::stats
