#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <iomanip>

#include "common/logging.hh"

namespace stacknoc::stats {

void
TickLog::averageSample(Average *a, double v)
{
    entries_.push_back(
        {ordinal_, Op::AvgSample, a, std::bit_cast<std::uint64_t>(v), 0});
}

void
TickLog::apply(const Entry &e)
{
    switch (e.op) {
      case Op::CounterInc:
        static_cast<Counter *>(e.target)->inc(e.a);
        break;
      case Op::CounterSet:
        static_cast<Counter *>(e.target)->set(e.a);
        break;
      case Op::AvgSample:
        static_cast<Average *>(e.target)->sample(std::bit_cast<double>(e.a));
        break;
      case Op::DistSample:
        static_cast<Distribution *>(e.target)->sample(e.a, e.b);
        break;
      case Op::HistSample:
        static_cast<Histogram *>(e.target)->sample(e.a, e.b);
        break;
    }
}

void
TickLog::applyInOrder(TickLog *const *logs, std::size_t n)
{
    panic_if(tickLog() != nullptr,
             "TickLog::applyInOrder would re-defer into an installed log");

    // K-way merge by component ordinal. Within one log, entries are
    // already in tick order (a shard ticks its components in ascending
    // ordinal order), so each log is consumed front-to-back; across
    // logs, the run with the smallest front ordinal goes first. Each
    // ordinal lives in exactly one log, so the merge is a total order —
    // the same order the sequential engine would have produced.
    std::vector<std::size_t> pos(n, 0);
    for (;;) {
        std::size_t best = n;
        std::uint32_t best_ord = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (pos[i] >= logs[i]->entries_.size())
                continue;
            const std::uint32_t ord = logs[i]->entries_[pos[i]].ordinal;
            if (best == n || ord < best_ord) {
                best = i;
                best_ord = ord;
            }
        }
        if (best == n)
            break;
        auto &entries = logs[best]->entries_;
        std::size_t &p = pos[best];
        while (p < entries.size() && entries[p].ordinal == best_ord)
            apply(entries[p++]);
    }
    for (std::size_t i = 0; i < n; ++i)
        logs[i]->clear();
}

Distribution::Distribution(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0)
{
    for (std::size_t i = 1; i < edges_.size(); ++i)
        panic_if(edges_[i] <= edges_[i - 1],
                 "Distribution edges must be strictly increasing");
}

void
Distribution::sample(std::uint64_t v, std::uint64_t weight)
{
    if (TickLog *log = tickLog()) {
        log->distributionSample(this, v, weight);
        return;
    }
    std::size_t bin = edges_.size();
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (v < edges_[i]) {
            bin = i;
            break;
        }
    }
    counts_[bin] += weight;
    total_ += weight;
}

double
Distribution::binFraction(std::size_t i) const
{
    return total_ ? static_cast<double>(counts_.at(i)) / total_ : 0.0;
}

std::string
Distribution::binLabel(std::size_t i) const
{
    if (i == edges_.size())
        return std::to_string(edges_.empty() ? 0 : edges_.back()) + "+";
    const std::uint64_t lo = i == 0 ? 0 : edges_[i - 1];
    return "[" + std::to_string(lo) + "," + std::to_string(edges_[i]) + ")";
}

void
Distribution::reset()
{
    for (auto &c : counts_)
        c = 0;
    total_ = 0;
}

std::size_t
Histogram::bucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t
Histogram::bucketLo(std::size_t i)
{
    return i == 0 ? 0 : 1ULL << (i - 1);
}

std::uint64_t
Histogram::bucketHi(std::size_t i)
{
    if (i == 0)
        return 0;
    if (i >= 64)
        return ~0ULL;
    return (1ULL << i) - 1;
}

void
Histogram::sample(std::uint64_t v, std::uint64_t weight)
{
    if (TickLog *log = tickLog()) {
        log->histogramSample(this, v, weight);
        return;
    }
    if (weight == 0)
        return;
    counts_[bucketOf(v)] += weight;
    count_ += weight;
    sum_ += v * weight;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    // 1-based rank of the selected sample.
    const double exact_rank = p * static_cast<double>(count_);
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(exact_rank + 0.5));

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (counts_[i] == 0)
            continue;
        if (cum + counts_[i] < rank) {
            cum += counts_[i];
            continue;
        }
        const double lo = static_cast<double>(bucketLo(i));
        const double hi = static_cast<double>(bucketHi(i));
        // Midpoint convention: the k-th of n samples in a bucket sits at
        // fraction (k - 0.5) / n of the bucket's width.
        const double frac =
            (static_cast<double>(rank - cum) - 0.5) /
            static_cast<double>(counts_[i]);
        const double v = lo + frac * (hi - lo);
        return std::clamp(v, static_cast<double>(min_),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void
Histogram::reset()
{
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

Counter &
Group::counter(const std::string &stat_name)
{
    return counters_[stat_name];
}

Average &
Group::average(const std::string &stat_name)
{
    return averages_[stat_name];
}

Distribution &
Group::distribution(const std::string &stat_name,
                    std::vector<std::uint64_t> edges)
{
    auto it = distributions_.find(stat_name);
    if (it == distributions_.end()) {
        it = distributions_.emplace(stat_name, Distribution(std::move(edges)))
                 .first;
    }
    return it->second;
}

Histogram &
Group::histogram(const std::string &stat_name)
{
    return histograms_[stat_name];
}

const Counter *
Group::findCounter(const std::string &stat_name) const
{
    auto it = counters_.find(stat_name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Average *
Group::findAverage(const std::string &stat_name) const
{
    auto it = averages_.find(stat_name);
    return it == averages_.end() ? nullptr : &it->second;
}

const Distribution *
Group::findDistribution(const std::string &stat_name) const
{
    auto it = distributions_.find(stat_name);
    return it == distributions_.end() ? nullptr : &it->second;
}

const Histogram *
Group::findHistogram(const std::string &stat_name) const
{
    auto it = histograms_.find(stat_name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[n, c] : counters_)
        os << name_ << "." << n << " " << c.value() << "\n";
    for (const auto &[n, a] : averages_) {
        os << name_ << "." << n << " mean=" << a.mean()
           << " count=" << a.count() << "\n";
    }
    for (const auto &[n, d] : distributions_) {
        os << name_ << "." << n << " total=" << d.total();
        for (std::size_t i = 0; i < d.numBins(); ++i) {
            os << " " << d.binLabel(i) << "="
               << std::setprecision(4) << d.binFraction(i) * 100.0 << "%";
        }
        os << "\n";
    }
    for (const auto &[n, h] : histograms_) {
        os << name_ << "." << n << " count=" << h.count()
           << " mean=" << std::setprecision(6) << h.mean()
           << " p50=" << h.percentile(0.50)
           << " p95=" << h.percentile(0.95)
           << " p99=" << h.percentile(0.99)
           << " max=" << h.maxValue() << "\n";
    }
}

void
Group::reset()
{
    for (auto &[n, c] : counters_)
        c.reset();
    for (auto &[n, a] : averages_)
        a.reset();
    for (auto &[n, d] : distributions_)
        d.reset();
    for (auto &[n, h] : histograms_)
        h.reset();
}

} // namespace stacknoc::stats
