#include "sim/simulator.hh"

#include "common/logging.hh"

namespace stacknoc {

void
Simulator::add(Ticking *component, int affinity)
{
    panic_if(component == nullptr, "null component registered");
    panic_if(affinity < kSerialAffinity,
             "component affinity must be >= %d", kSerialAffinity);
    components_.push_back(component);
    affinities_.push_back(affinity);
    ++version_;
}

void
Simulator::step()
{
    for (Ticking *c : components_)
        c->tick(now_);
    completeCycle();
}

void
Simulator::completeCycle()
{
    for (auto &cb : cycle_end_callbacks_)
        cb(now_);
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Simulator::onCycleEnd(std::function<void(Cycle)> cb)
{
    cycle_end_callbacks_.push_back(std::move(cb));
}

} // namespace stacknoc
