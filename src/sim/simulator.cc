#include "sim/simulator.hh"

#include "common/logging.hh"

namespace stacknoc {

void
Simulator::add(Ticking *component)
{
    panic_if(component == nullptr, "null component registered");
    components_.push_back(component);
}

void
Simulator::step()
{
    for (Ticking *c : components_)
        c->tick(now_);
    for (auto &cb : cycle_end_callbacks_)
        cb(now_);
    ++now_;
}

void
Simulator::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Simulator::onCycleEnd(std::function<void(Cycle)> cb)
{
    cycle_end_callbacks_.push_back(std::move(cb));
}

} // namespace stacknoc
