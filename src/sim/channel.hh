/**
 * @file
 * Fixed-latency typed channels: the only legal way for two Ticking
 * components to exchange state.
 */

#ifndef STACKNOC_SIM_CHANNEL_HH
#define STACKNOC_SIM_CHANNEL_HH

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "sim/ticking.hh"

namespace stacknoc {

namespace snapshot {
class StateIO;
} // namespace snapshot

/**
 * Type-erased base of every Channel, carrying the staged-push (double
 * buffer) machinery used by the sharded parallel execution engine.
 *
 * During a parallel compute phase each worker thread installs a staging
 * list via setStagingList(). While a staging list is installed, push()
 * appends to a per-channel staging buffer instead of the live queue and
 * enrols the channel in the thread's list; after the phase barrier the
 * engine calls commitStaged() on every enrolled channel (single
 * threaded), splicing staged values into the live queue in push order.
 *
 * Because every channel has latency >= 1, a value pushed during cycle t
 * can never be received during cycle t, so deferring the queue append to
 * the end of the cycle is unobservable — results are bit-identical to
 * immediate pushes. The staging buffer is only ever touched by the one
 * component that sends on the channel (channels are single-sender), and
 * the live queue only by the one receiver, so the two phases are
 * data-race free without any atomics on the hot path.
 *
 * With no staging list installed (the default, and always the case under
 * the sequential engine) push() is exactly the historical immediate
 * append.
 */
class ChannelBase
{
  public:
    virtual ~ChannelBase() = default;

    /** Splice staged values into the live queue (engine use only). */
    virtual void commitStaged() = 0;

    /**
     * Declare @p t the receiving component of this channel: every push
     * wakes it for idle elision. Immediate pushes wake at push time;
     * staged pushes wake during commitStaged(), which runs single
     * threaded after the phase barrier, so a worker thread never touches
     * another shard's active flags.
     */
    void setWakeTarget(Ticking *t) { wake_target_ = t; }

    /**
     * Register a receiver-owned "something was pushed" byte: every push
     * also sets *flag to 1 (immediate pushes at push time, staged
     * pushes during the single-threaded commitStaged()). The receiver
     * uses it to skip polling empty channels and is responsible for
     * re-arming the flag while values remain in flight. Same threading
     * contract as the wake target.
     */
    void setSignalFlag(std::uint8_t *flag) { signal_ = flag; }

    /**
     * Install @p list as this thread's staged-channel enrolment list
     * (null restores immediate pushes). Engine use only.
     */
    static void
    setStagingList(std::vector<ChannelBase *> *list)
    {
        staging_ = list;
    }

  protected:
    static std::vector<ChannelBase *> *stagingList() { return staging_; }

    void
    wakeTarget()
    {
        if (wake_target_ != nullptr)
            wake_target_->wake();
        if (signal_ != nullptr)
            *signal_ = 1;
    }

  private:
    static inline thread_local std::vector<ChannelBase *> *staging_ =
        nullptr;
    Ticking *wake_target_ = nullptr;
    std::uint8_t *signal_ = nullptr;
};

/**
 * A unidirectional pipe with a fixed delivery latency of >= 1 cycle.
 *
 * A value pushed during cycle t becomes receivable during cycle
 * t + latency. Multiple values may be pushed per cycle (bandwidth policing
 * is the sender's job); receivers drain all arrived values.
 *
 * Exactly one component may send on a channel and exactly one may
 * receive; this is what lets the parallel engine run sender and receiver
 * on different threads (see ChannelBase).
 */
template <typename T>
class Channel : public ChannelBase
{
  public:
    explicit Channel(Cycle latency = 1) : latency_(latency)
    {
        panic_if(latency == 0, "Channel latency must be >= 1");
    }

    /** Enqueue a value during cycle @p now. */
    void
    push(Cycle now, T value)
    {
        if (auto *enrolled = stagingList()) {
            if (staged_.empty())
                enrolled->push_back(this);
            staged_.emplace_back(now + latency_, std::move(value));
            return;
        }
        queue_.emplace_back(now + latency_, std::move(value));
        wakeTarget();
    }

    void
    commitStaged() override
    {
        for (auto &e : staged_)
            queue_.push_back(std::move(e));
        staged_.clear();
        wakeTarget();
    }

    /**
     * Dequeue the next value whose delivery time has been reached.
     * @return the value, or std::nullopt if nothing has arrived yet.
     */
    std::optional<T>
    receive(Cycle now)
    {
        if (queue_.empty() || queue_.front().first > now)
            return std::nullopt;
        T v = std::move(queue_.front().second);
        queue_.pop_front();
        return v;
    }

    /** @return whether a value is ready at cycle @p now without popping. */
    bool
    ready(Cycle now) const
    {
        return !queue_.empty() && queue_.front().first <= now;
    }

    /** @return number of values in flight (arrived or not). */
    std::size_t inFlight() const { return queue_.size(); }

    /**
     * Visit every in-flight value, oldest first. Observer use only
     * (validation census); must not be used to smuggle state between
     * components ahead of the delivery latency.
     */
    template <typename Fn>
    void
    forEachInFlight(Fn fn) const
    {
        for (const auto &e : queue_)
            fn(e.second);
    }

    Cycle latency() const { return latency_; }

  private:
    /** Checkpointing reads queue_ (with delivery times) and appends
     *  restored entries without calling wakeTarget(): the engine active
     *  set is restored separately, and a restore-time wake would differ
     *  from the saved run's flag state. */
    friend class snapshot::StateIO;
    Cycle latency_;
    std::deque<std::pair<Cycle, T>> queue_;
    /** Values pushed during a parallel compute phase, pre-commit. */
    std::vector<std::pair<Cycle, T>> staged_;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_CHANNEL_HH
