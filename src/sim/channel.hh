/**
 * @file
 * Fixed-latency typed channels: the only legal way for two Ticking
 * components to exchange state.
 */

#ifndef STACKNOC_SIM_CHANNEL_HH
#define STACKNOC_SIM_CHANNEL_HH

#include <deque>
#include <optional>
#include <utility>

#include "common/logging.hh"
#include "common/types.hh"

namespace stacknoc {

/**
 * A unidirectional pipe with a fixed delivery latency of >= 1 cycle.
 *
 * A value pushed during cycle t becomes receivable during cycle
 * t + latency. Multiple values may be pushed per cycle (bandwidth policing
 * is the sender's job); receivers drain all arrived values.
 */
template <typename T>
class Channel
{
  public:
    explicit Channel(Cycle latency = 1) : latency_(latency)
    {
        panic_if(latency == 0, "Channel latency must be >= 1");
    }

    /** Enqueue a value during cycle @p now. */
    void
    push(Cycle now, T value)
    {
        queue_.emplace_back(now + latency_, std::move(value));
    }

    /**
     * Dequeue the next value whose delivery time has been reached.
     * @return the value, or std::nullopt if nothing has arrived yet.
     */
    std::optional<T>
    receive(Cycle now)
    {
        if (queue_.empty() || queue_.front().first > now)
            return std::nullopt;
        T v = std::move(queue_.front().second);
        queue_.pop_front();
        return v;
    }

    /** @return whether a value is ready at cycle @p now without popping. */
    bool
    ready(Cycle now) const
    {
        return !queue_.empty() && queue_.front().first <= now;
    }

    /** @return number of values in flight (arrived or not). */
    std::size_t inFlight() const { return queue_.size(); }

    /**
     * Visit every in-flight value, oldest first. Observer use only
     * (validation census); must not be used to smuggle state between
     * components ahead of the delivery latency.
     */
    template <typename Fn>
    void
    forEachInFlight(Fn fn) const
    {
        for (const auto &e : queue_)
            fn(e.second);
    }

    Cycle latency() const { return latency_; }

  private:
    Cycle latency_;
    std::deque<std::pair<Cycle, T>> queue_;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_CHANNEL_HH
