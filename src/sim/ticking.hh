/**
 * @file
 * Interface for cycle-driven components.
 */

#ifndef STACKNOC_SIM_TICKING_HH
#define STACKNOC_SIM_TICKING_HH

#include <string>

#include "common/types.hh"

namespace stacknoc {

/**
 * A component evaluated once per clock cycle.
 *
 * All inter-component communication must flow through latency-1 (or more)
 * Channel objects, which makes simulation results independent of the order
 * in which components are ticked within a cycle.
 */
class Ticking
{
  public:
    explicit Ticking(std::string name) : name_(std::move(name)) {}
    virtual ~Ticking() = default;

    Ticking(const Ticking &) = delete;
    Ticking &operator=(const Ticking &) = delete;

    /** Evaluate one cycle. @param now the cycle being evaluated. */
    virtual void tick(Cycle now) = 0;

    /** @return hierarchical component name, e.g. "net.router27". */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_TICKING_HH
