/**
 * @file
 * Interface for cycle-driven components.
 */

#ifndef STACKNOC_SIM_TICKING_HH
#define STACKNOC_SIM_TICKING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace stacknoc {

/**
 * Coarse component classification used by the execution engines to batch
 * the per-cycle tick walk into per-kind loops (devirtualized dispatch)
 * and to order those loops deterministically. The enumerator order IS
 * the within-cycle tick order of the kind-batched schedule; it mirrors
 * the registration order CmpSystem has always used (network first, then
 * memory, then cores), so every direct-call contract (NI delivers before
 * its bank ticks, an L1 ticks before its core) is preserved.
 */
enum class TickKind : std::uint8_t {
    Router = 0,
    NetworkInterface,
    RcaFabric,
    L2Bank,
    MemoryController,
    L1Cache,
    Core,
    Other, //!< anything the engines only know through the vtable
};

constexpr int kNumTickKinds = static_cast<int>(TickKind::Other) + 1;

/**
 * A component evaluated once per clock cycle.
 *
 * All inter-component communication must flow through latency-1 (or more)
 * Channel objects, which makes simulation results independent of the order
 * in which components are ticked within a cycle.
 *
 * ## Quiescence and wake (idle elision)
 *
 * A component may additionally implement quiescent(): returning true is a
 * promise that tick() is a no-op — no state changes, no stats samples, no
 * channel pushes — and will remain one every cycle until some external
 * event (a channel push or a direct method call) perturbs the component.
 * The execution engines use this to drop quiescent components from the
 * active set; wake() re-arms them. The contract is asymmetric on purpose:
 * a spurious wake() costs one wasted tick, a missed wake diverges the
 * simulation, so every mutating entry point must wake conservatively.
 * Components that cannot prove idleness keep the default (never
 * quiescent) and are simply always ticked.
 */
class Ticking
{
  public:
    explicit Ticking(std::string name) : name_(std::move(name)) {}
    virtual ~Ticking() = default;

    Ticking(const Ticking &) = delete;
    Ticking &operator=(const Ticking &) = delete;

    /** Evaluate one cycle. @param now the cycle being evaluated. */
    virtual void tick(Cycle now) = 0;

    /**
     * @return true iff tick(now) — and every later tick until the next
     * wake() — would be a no-op. Must account for in-flight channel
     * payloads (a push wakes the receiver once, at push time, so a
     * component with arrivals still in the pipe may not sleep).
     */
    virtual bool quiescent(Cycle now) const
    {
        (void)now;
        return false;
    }

    /** @return the engine batching/ordering class of this component. */
    virtual TickKind tickKind() const { return TickKind::Other; }

    /** Re-arm this component in the owning engine's active set. */
    void wake()
    {
        if (wake_flag_ != nullptr)
            *wake_flag_ = 1;
    }

    /**
     * Point wake() at an engine-owned active flag (nullptr-safe no-op
     * until bound). The engine owns the flag storage; it must outlive
     * the binding and never reallocate.
     */
    void bindWakeFlag(std::uint8_t *flag) { wake_flag_ = flag; }

    /** Unbind, but only if still bound to @p flag (engine teardown). */
    void unbindWakeFlag(const std::uint8_t *flag)
    {
        if (wake_flag_ == flag)
            wake_flag_ = nullptr;
    }

    /** @return hierarchical component name, e.g. "net.router27". */
    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::uint8_t *wake_flag_ = nullptr;
};

} // namespace stacknoc

#endif // STACKNOC_SIM_TICKING_HH
