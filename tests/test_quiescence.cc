/**
 * @file
 * The idle-elision quiescence contract (docs/ENGINE.md): a component
 * reporting quiescent() promises its tick() is a no-op — no state, no
 * stats, no channel pushes — until an external wake re-arms it. These
 * tests prove the property per component kind (tick a quiescent
 * component anyway and verify nothing changed), and unit-test the wake
 * plumbing: channel pushes wake their receiver (immediate and staged),
 * and every mutating component entry point wakes conservatively.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "coherence/l1_cache.hh"
#include "coherence/l2_bank.hh"
#include "engine/shard_plan.hh"
#include "mem/memory_controller.hh"
#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/channel.hh"
#include "sim/simulator.hh"
#include "system/cmp_system.hh"

namespace stacknoc {
namespace {

using coherence::CohKind;
using coherence::Grant;
using coherence::HomeMap;
using coherence::L1Cache;
using coherence::L2Bank;
using coherence::L2Config;
using noc::PacketClass;
using noc::PacketPtr;

/** Bit-exact digest of every stat in @p g. */
std::string
digestGroup(const stats::Group &g)
{
    std::ostringstream os;
    for (const auto &[n, c] : g.allCounters())
        os << n << "=" << c.value() << "\n";
    for (const auto &[n, a] : g.allAverages())
        os << n << " sum=" << a.sum() << " count=" << a.count() << "\n";
    return os.str();
}

// ---------------------------------------------------------------------
// Channel wake plumbing.
// ---------------------------------------------------------------------

struct StubComponent : Ticking
{
    StubComponent() : Ticking("stub") {}
    void tick(Cycle) override {}
};

TEST(Wake, ImmediatePushWakesReceiverAtPushTime)
{
    StubComponent recv;
    std::uint8_t flag = 0;
    recv.bindWakeFlag(&flag);

    Channel<int> ch(1);
    ch.setWakeTarget(&recv);
    ch.push(0, 42);
    EXPECT_EQ(flag, 1);

    recv.unbindWakeFlag(&flag);
    flag = 0;
    ch.push(1, 43);
    EXPECT_EQ(flag, 0) << "unbound flag must not be written";
}

TEST(Wake, StagedPushWakesAtCommitNotAtPush)
{
    StubComponent recv;
    std::uint8_t flag = 0;
    recv.bindWakeFlag(&flag);

    Channel<int> ch(1);
    ch.setWakeTarget(&recv);

    std::vector<ChannelBase *> enrolled;
    ChannelBase::setStagingList(&enrolled);
    ch.push(0, 42);
    ChannelBase::setStagingList(nullptr);
    EXPECT_EQ(flag, 0) << "staged push must defer the wake to commit";
    ASSERT_EQ(enrolled.size(), 1u);

    enrolled.front()->commitStaged();
    EXPECT_EQ(flag, 1) << "commitStaged must wake the receiver";
    EXPECT_TRUE(ch.receive(1).has_value());
    recv.unbindWakeFlag(&flag);
}

TEST(Wake, UnbindOnlyClearsMatchingFlag)
{
    StubComponent c;
    std::uint8_t a = 0, b = 0;
    c.bindWakeFlag(&a);
    c.unbindWakeFlag(&b); // not the bound flag: must stay bound
    c.wake();
    EXPECT_EQ(a, 1);
    c.unbindWakeFlag(&a);
}

// ---------------------------------------------------------------------
// Router / NetworkInterface.
// ---------------------------------------------------------------------

class AcceptAll : public noc::NetworkClient
{
  public:
    bool tryAccept(const noc::Packet &) override { return true; }
    void deliver(PacketPtr, Cycle) override {}
};

struct NetFixture
{
    NetFixture()
        : shape(4, 4, 2),
          net(sim, shape, noc::NocParams{},
              std::make_unique<noc::ZxyRouting>(shape), policy)
    {
        for (NodeId n = 0; n < shape.totalNodes(); ++n)
            net.ni(n).setClient(&client);
    }

    Simulator sim;
    MeshShape shape;
    noc::ArbitrationPolicy policy;
    AcceptAll client;
    noc::Network net;
};

TEST(Quiescence, IdleNetworkIsQuiescentAndTrafficWakesIt)
{
    NetFixture f;
    f.sim.run(50); // nothing injected: everything settles idle
    const Cycle now = f.sim.now();
    for (NodeId n = 0; n < f.shape.totalNodes(); ++n) {
        EXPECT_TRUE(f.net.router(n).quiescent(now)) << "router " << n;
        EXPECT_TRUE(f.net.ni(n).quiescent(now)) << "ni " << n;
    }

    // send() must wake the NI at call time, before any tick runs.
    std::uint8_t ni_flag = 0;
    f.net.ni(0).bindWakeFlag(&ni_flag);
    f.net.ni(0).send(noc::makePacket(PacketClass::DataResp, 0, 3), now);
    EXPECT_EQ(ni_flag, 1);
    EXPECT_FALSE(f.net.ni(0).quiescent(now));
    f.net.ni(0).unbindWakeFlag(&ni_flag);

    // The injection must ripple a wake into the attached router via the
    // local-link channel push once the NI ticks.
    std::uint8_t router_flag = 0;
    f.net.router(0).bindWakeFlag(&router_flag);
    f.sim.run(2);
    EXPECT_EQ(router_flag, 1) << "local-link push did not wake router";
    f.net.router(0).unbindWakeFlag(&router_flag);

    // Drain, then everything must return to quiescence.
    f.sim.run(100);
    const Cycle later = f.sim.now();
    for (NodeId n = 0; n < f.shape.totalNodes(); ++n) {
        EXPECT_TRUE(f.net.router(n).quiescent(later)) << "router " << n;
        EXPECT_TRUE(f.net.ni(n).quiescent(later)) << "ni " << n;
    }
}

/**
 * The no-op property, end to end: run a trafficked network twice, the
 * second time ticking every router/NI that claims quiescence an extra
 * time each cycle. If quiescent() ever lies, the double tick perturbs
 * stats or buffer state and the digests diverge.
 */
std::string
runNetworkScenario(bool double_tick_quiescent)
{
    noc::resetPacketIds();
    NetFixture f;
    for (int cycle = 0; cycle < 400; ++cycle) {
        const Cycle now = f.sim.now();
        if (cycle < 250 && cycle % 7 == 0) {
            const NodeId src = static_cast<NodeId>(cycle) % 16;
            const NodeId dst = (src + 5) % 32;
            f.net.ni(src).send(
                noc::makePacket(PacketClass::DataResp, src, dst), now);
        }
        if (double_tick_quiescent) {
            for (NodeId n = 0; n < f.shape.totalNodes(); ++n) {
                if (f.net.router(n).quiescent(now))
                    f.net.router(n).tick(now);
                if (f.net.ni(n).quiescent(now))
                    f.net.ni(n).tick(now);
            }
        }
        f.sim.step();
    }
    std::ostringstream os;
    os << digestGroup(f.net.stats());
    for (NodeId n = 0; n < f.shape.totalNodes(); ++n)
        os << "buf" << n << "=" << f.net.router(n).bufferedFlits()
           << " cong=" << f.net.router(n).localCongestion() << "\n";
    return os.str();
}

TEST(Quiescence, QuiescentRouterAndNiTicksAreNoops)
{
    const std::string ref = runNetworkScenario(false);
    const std::string doubled = runNetworkScenario(true);
    EXPECT_EQ(ref, doubled);
}

// ---------------------------------------------------------------------
// L2 bank (the bank controller).
// ---------------------------------------------------------------------

struct L2Fixture
{
    L2Fixture()
        : group("cache"),
          bank("l2bank0", 0, 64, sender, L2Config{}, group)
    {}

    PacketPtr
    request(CohKind kind, CoreId core, BlockAddr addr)
    {
        auto pkt = noc::makePacket(kind == CohKind::GetM
                                       ? PacketClass::WriteReq
                                       : PacketClass::ReadReq,
                                   core, 64, addr);
        pkt->destBank = 0;
        setKind(*pkt, kind, core);
        pkt->info.flags |= coherence::kFlagL2Hit;
        return pkt;
    }

    class RecordingSender : public noc::PacketSender
    {
      public:
        void send(PacketPtr, Cycle) override { ++sent; }
        std::size_t sent = 0;
    };

    stats::Group group;
    RecordingSender sender;
    L2Bank bank;
    Cycle now = 0;
};

TEST(Quiescence, L2BankDeliverWakesAndIdleTickIsNoop)
{
    L2Fixture f;
    EXPECT_TRUE(f.bank.quiescent(0));

    std::uint8_t flag = 0;
    f.bank.bindWakeFlag(&flag);
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    EXPECT_EQ(flag, 1) << "deliver() must wake the bank";
    EXPECT_FALSE(f.bank.quiescent(0));

    for (f.now = 0; f.now < 10; ++f.now)
        f.bank.tick(f.now);
    // Three-phase protocol: still open until the Unblock arrives.
    EXPECT_FALSE(f.bank.quiescent(f.now));
    auto u = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*u, CohKind::Unblock, 3);
    f.bank.deliver(std::move(u), f.now);
    for (; f.now < 20; ++f.now)
        f.bank.tick(f.now);
    EXPECT_TRUE(f.bank.quiescent(f.now));

    // No-op property: extra ticks while quiescent change nothing.
    const std::string before = digestGroup(f.group);
    const std::size_t sent_before = f.sender.sent;
    for (; f.now < 40; ++f.now)
        f.bank.tick(f.now);
    EXPECT_EQ(digestGroup(f.group), before);
    EXPECT_EQ(f.sender.sent, sent_before);
    EXPECT_TRUE(f.bank.quiescent(f.now));
    f.bank.unbindWakeFlag(&flag);
}

// ---------------------------------------------------------------------
// Memory controller.
// ---------------------------------------------------------------------

TEST(Quiescence, MemoryControllerDeliverWakesAndIdleTickIsNoop)
{
    stats::Group net_stats("network"), mem_stats("mem");
    noc::NetworkInterface ni("ni64", 64, noc::NocParams{}, net_stats);
    mem::MemoryController mc("mc64", 64, ni, mem::DramParams{},
                             mem_stats);
    EXPECT_TRUE(mc.quiescent(0));

    std::uint8_t flag = 0;
    mc.bindWakeFlag(&flag);
    auto req = noc::makePacket(PacketClass::MemReq, 70, 64, 0x100);
    req->destBank = 6;
    req->ejectedAt = 0;
    mc.deliver(std::move(req), 0);
    EXPECT_EQ(flag, 1) << "deliver() must wake the controller";
    EXPECT_FALSE(mc.quiescent(0));

    Cycle t = 0;
    for (; t < 500 && !mc.quiescent(t); ++t)
        mc.tick(t);
    EXPECT_TRUE(mc.quiescent(t)) << "DRAM access never drained";

    const std::string before = digestGroup(mem_stats);
    const std::size_t injected = ni.injectQueueDepth();
    for (Cycle e = t; e < t + 50; ++e)
        mc.tick(e);
    EXPECT_EQ(digestGroup(mem_stats), before);
    EXPECT_EQ(ni.injectQueueDepth(), injected);
    mc.unbindWakeFlag(&flag);
}

// ---------------------------------------------------------------------
// L1 cache.
// ---------------------------------------------------------------------

TEST(Quiescence, L1AccessWakesAndQuiescentTickIsNoop)
{
    stats::Group group("cache");
    L2Fixture::RecordingSender sender;
    coherence::L1Config cfg;
    cfg.sets = 2;
    cfg.ways = 2;
    cfg.mshrs = 4;
    L1Cache l1("l1.0", 0, sender, HomeMap{}, cfg, group);
    EXPECT_TRUE(l1.quiescent(0));

    std::uint8_t flag = 0;
    l1.bindWakeFlag(&flag);
    int completions = 0;
    auto done = [&](Cycle) { ++completions; };

    // A miss wakes (conservatively) but completes via deliver(), so the
    // L1 may stay quiescent: its tick only fires delayed hits.
    EXPECT_TRUE(l1.access(false, 0x40, true, done, 10));
    EXPECT_EQ(flag, 1) << "access() must wake the L1";
    auto data = noc::makePacket(PacketClass::DataResp, 64, 0, 0x40);
    setKind(*data, CohKind::Data, 0);
    data->info.aux = static_cast<std::uint16_t>(Grant::S);
    l1.deliver(std::move(data), 30);
    EXPECT_EQ(completions, 1);

    // A hit schedules a delayed completion: not quiescent until the
    // tick that fires it.
    EXPECT_TRUE(l1.access(false, 0x40, true, done, 40));
    EXPECT_FALSE(l1.quiescent(40));
    Cycle t = 40;
    for (; t < 60 && !l1.quiescent(t); ++t)
        l1.tick(t);
    EXPECT_TRUE(l1.quiescent(t));
    EXPECT_EQ(completions, 2);

    const std::string before = digestGroup(group);
    for (Cycle e = t; e < t + 20; ++e)
        l1.tick(e);
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(digestGroup(group), before);
    l1.unbindWakeFlag(&flag);
}

// ---------------------------------------------------------------------
// Whole-system schedule properties.
// ---------------------------------------------------------------------

system::SystemConfig
smallSystem()
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.seed = 7;
    return cfg;
}

TEST(Quiescence, CoresNeverReportQuiescent)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallSystem());
    sys.run(300);
    const Cycle now = sys.simulator().now();

    const engine::ShardPlan plan =
        engine::buildShardPlan(sys.simulator(), 1);
    std::size_t cores = 0;
    auto check = [&](const engine::ShardItem &item) {
        if (item.kind != TickKind::Core)
            return;
        ++cores;
        EXPECT_FALSE(item.component->quiescent(now))
            << "a core claimed quiescence (its workload stream and "
               "stall accounting run every cycle)";
    };
    for (const auto &shard : plan.shards)
        for (const auto &item : shard)
            check(item);
    for (const auto &item : plan.serial)
        check(item);
    EXPECT_EQ(cores, 16u);
}

TEST(Quiescence, ScheduleIsKindBatchedInOrdinalOrder)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallSystem());
    const engine::ShardPlan plan =
        engine::buildShardPlan(sys.simulator(), 1);

    // One shard requested: walking shard 0 then the serial list must
    // visit strictly ascending ordinals with non-decreasing kinds —
    // the contiguous per-kind batches the engines rely on.
    std::vector<const engine::ShardItem *> walk;
    for (const auto &shard : plan.shards)
        for (const auto &item : shard)
            walk.push_back(&item);
    const std::size_t parallel = walk.size();
    for (const auto &item : plan.serial)
        walk.push_back(&item);

    for (std::size_t i = 0; i + 1 < parallel; ++i) {
        EXPECT_LT(walk[i]->ordinal, walk[i + 1]->ordinal);
        EXPECT_LE(static_cast<int>(walk[i]->kind),
                  static_cast<int>(walk[i + 1]->kind));
    }
    // Kind order is the historical registration order: routers first,
    // cores last among the batched kinds.
    ASSERT_FALSE(walk.empty());
    EXPECT_EQ(walk.front()->kind, TickKind::Router);
}

} // namespace
} // namespace stacknoc
