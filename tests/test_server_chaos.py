"""Chaos harness for the self-healing campaign server: every injected
failure must end with exactly one terminal event per job and byte-level
agreement with a clean run.

  * --chaos kill-worker: SIGKILL mid-measure; the job retries from the
    published warm checkpoint and the final stats digest matches a
    chaos-free run of the same configuration;
  * --chaos slow-worker + --job-deadline-sec: hung workers are killed
    and retried, exhausting into a single final error that carries the
    attempt history;
  * --chaos corrupt-ckpt: a bit-flipped checkpoint fails its restore
    checksum and falls back to a cold warm-up, never a failed job;
  * --store-dir: a kill -9'd server restarts and serves byte-identical
    cached payloads; torn journal tails are skipped with counters, and
    a full disk degrades to memory-only caching;
  * --max-queue backpressure sheds with a structured retry_after_ms;
  * SIGTERM drains: running jobs finish, new submissions are refused,
    the store seals, and the process exits 0.

Same conventions as test_server_smoke.py: pytest-style plain asserts,
no pytest dependency; ctest invokes ``python3 tests/test_server_chaos.py
SERVE CLIENT``.
"""

import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SERVE = os.environ.get("STACKNOC_SERVE", "")
CLIENT = os.environ.get("STACKNOC_CLIENT", "")

BASE = ["--scenario", "MRAM-4TSB-WB", "--mesh", "8x8", "--apps", "tpcc",
        "--warmup", "300"]
SMALL = [*BASE, "--cycles", "1000"]
# ~18k simulated cycles/sec: long enough to lose races against on
# purpose (backpressure, drain), short enough for the ctest timeout.
LONG = [*BASE, "--cycles", "100000"]


class Server:
    """stacknoc_serve with the HTTP scrape on and extra chaos flags."""

    def __init__(self, extra=(), workers=1, http=True):
        self.dir = tempfile.mkdtemp(prefix="stacknoc_chaos_")
        self.socket = os.path.join(self.dir, "serve.sock")
        self.log_path = os.path.join(self.dir, "events.ndjson")
        argv = [SERVE, "--socket", self.socket,
                "--workers", str(workers),
                "--ckpt-dir", os.path.join(self.dir, "ckpt"),
                "--log-json", self.log_path, *extra]
        if http:
            argv += ["--http", "0"]
        self.proc = subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                                     stderr=subprocess.PIPE, text=True)
        self.port = None
        stderr_lines = []
        deadline = time.time() + 10
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"server died: {''.join(stderr_lines)}"
                    f"{self.proc.stderr.read()}")
            line = self.proc.stderr.readline()
            stderr_lines.append(line)
            m = re.search(r"http on port (\d+)", line)
            if m:
                self.port = int(m.group(1))
            if os.path.exists(self.socket) and (self.port or not http):
                break
        else:
            raise AssertionError(
                f"server never came up: {''.join(stderr_lines)}")

    def client(self, *args, expect_rc=0, timeout=240):
        proc = subprocess.run([CLIENT, "--socket", self.socket, *args],
                              capture_output=True, text=True,
                              timeout=timeout)
        if expect_rc is not None:
            assert proc.returncode == expect_rc, \
                (f"client {' '.join(args)} exited {proc.returncode} "
                 f"(want {expect_rc}):\n{proc.stdout}\n{proc.stderr}")
        return [json.loads(line) for line in
                proc.stdout.splitlines() if line.strip()]

    def client_bg(self, *args):
        return subprocess.Popen([CLIENT, "--socket", self.socket,
                                 *args], stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL, text=True)

    def status(self):
        return events_of(self.client("status"), "status")[0]

    def scrape(self):
        import urllib.request
        with urllib.request.urlopen(
                f"http://127.0.0.1:{self.port}/metrics",
                timeout=60) as resp:
            text = resp.read().decode()
        series = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            key, value = line.rsplit(None, 1)
            series[key] = float(value)
        return series

    def wait_status(self, pred, timeout=60):
        deadline = time.time() + timeout
        while time.time() < deadline:
            st = self.status()
            if pred(st):
                return st
            time.sleep(0.05)
        raise AssertionError(f"status predicate never held: {st}")

    def shutdown(self, rm=True):
        try:
            if self.proc.poll() is None:
                self.client("shutdown")
                self.proc.wait(timeout=30)
        finally:
            if self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait()
            if rm:
                shutil.rmtree(self.dir, ignore_errors=True)

    def kill9(self):
        self.proc.kill()
        self.proc.wait()


def events_of(events, kind):
    return [e for e in events if e.get("event") == kind]


def terminal_events(events):
    return [e for e in events
            if e.get("event") in ("result", "error")]


def bg_events(proc, timeout=240):
    out, _ = proc.communicate(timeout=timeout)
    return proc.returncode, [json.loads(line) for line in
                             out.splitlines() if line.strip()]


def clean_digests(jobs):
    """Digests of each job list from a chaos-free server."""
    srv = Server(http=False)
    try:
        digests = []
        for job in jobs:
            data = events_of(srv.client("run", *job), "result")[0]["data"]
            digests.append(data["stats_digest"])
        return digests
    finally:
        srv.shutdown()


def test_kill_worker_exhausts_into_one_final_error():
    """kill-worker=1 murders every attempt: retries burn down into a
    single error event carrying the full attempt history."""
    srv = Server(extra=["--chaos", "kill-worker=1", "--chaos-seed", "3",
                        "--job-retries", "2", "--job-backoff-ms", "50"])
    try:
        events = srv.client("run", *SMALL, "--interval", "250",
                            expect_rc=1)
        term = terminal_events(events)
        assert len(term) == 1 and term[0]["event"] == "error", events
        err = term[0]
        assert err["attempts"] == 3, err
        assert len(err["attempt_history"]) == 3, err
        for entry in err["attempt_history"]:
            assert "worker process died" in entry, err

        series = srv.scrape()
        assert series["stacknoc_job_retries_total"] == 2
        assert series["stacknoc_jobs_failed_total"] == 1
        assert series["stacknoc_jobs_completed_total"] == 0
        st = srv.status()
        assert st["jobs_retried"] == 2 and st["jobs_failed"] == 1
    finally:
        srv.shutdown()


def test_chaos_campaign_converges_with_digest_parity():
    """A mid-measure SIGKILL campaign: every job resolves exactly once,
    and survivors (retried from the warm checkpoint) produce the same
    stats digest as a chaos-free run."""
    jobs = [[*SMALL, "--seed", str(s)] for s in (1, 2, 3, 4)]
    want = clean_digests(jobs)

    srv = Server(extra=["--chaos", "kill-worker=0.45",
                        "--chaos-seed", "5", "--job-retries", "3",
                        "--job-backoff-ms", "50"])
    try:
        completed = failed = 0
        for job, digest in zip(jobs, want):
            events = srv.client("run", *job, "--interval", "250",
                                expect_rc=None)
            term = terminal_events(events)
            assert len(term) == 1, \
                f"want exactly one terminal event: {events}"
            if term[0]["event"] == "result":
                completed += 1
                assert term[0]["data"]["stats_digest"] == digest, \
                    f"digest diverged after retries: {term[0]}"
            else:
                failed += 1

        series = srv.scrape()
        assert series["stacknoc_jobs_submitted_total"] == len(jobs)
        assert series["stacknoc_jobs_completed_total"] == completed
        assert series["stacknoc_jobs_failed_total"] == failed
        assert completed + failed == len(jobs)
        # The seed is pinned so the campaign provably exercised both
        # paths: at least one kill->retry and at least one survivor.
        assert series["stacknoc_job_retries_total"] >= 1, series
        assert completed >= 1, "no job survived the chaos campaign"
    finally:
        srv.shutdown()


def test_slow_worker_hits_deadline_and_retries():
    """slow-worker=1 stalls every attempt past --job-deadline-sec; the
    server SIGKILLs each one and the final error says why."""
    srv = Server(extra=["--chaos", "slow-worker=1", "--chaos-seed", "3",
                        "--job-deadline-sec", "2", "--job-retries", "1",
                        "--job-backoff-ms", "50"])
    try:
        events = srv.client("run", *SMALL, expect_rc=1)
        term = terminal_events(events)
        assert len(term) == 1 and term[0]["event"] == "error", events
        err = term[0]
        assert err["attempts"] == 2, err
        assert "job-deadline-sec" in err["reason"], err
        series = srv.scrape()
        assert series["stacknoc_job_deadline_kills_total"] == 2
        assert series["stacknoc_job_retries_total"] == 1
        assert series["stacknoc_jobs_failed_total"] == 1
    finally:
        srv.shutdown()


def test_corrupt_ckpt_falls_back_to_cold_warm():
    """corrupt-ckpt=1 bit-flips every published checkpoint: the next
    warm-sharing job fails the restore checksum, falls back to a cold
    warm-up, and still matches the clean digest."""
    (want,) = clean_digests([[*BASE, "--cycles", "2000"]])
    srv = Server(extra=["--chaos", "corrupt-ckpt=1",
                        "--chaos-seed", "3"])
    try:
        srv.client("run", *SMALL)  # publishes, then corrupts, the ckpt
        events = srv.client("run", *BASE, "--cycles", "2000")
        data = events_of(events, "result")[0]["data"]
        assert data["warm_restored"] is False, data
        assert data["stats_digest"] == want
        series = srv.scrape()
        assert series["stacknoc_ckpt_restore_fallbacks_total"] >= 1
        assert series["stacknoc_jobs_failed_total"] == 0
        with open(srv.log_path, encoding="utf-8") as f:
            assert any('"ckpt_restore_fallback"' in line for line in f)
    finally:
        srv.shutdown()


def test_store_survives_kill9_and_clean_restart():
    """Results outlive the server process: after kill -9 the journal
    replays and identical submissions are cache hits with byte-identical
    payloads; a clean shutdown seals the journal into a segment."""
    store = tempfile.mkdtemp(prefix="stacknoc_store_")
    job1 = [*SMALL, "--seed", "1"]
    job2 = [*SMALL, "--seed", "2"]
    try:
        srv = Server(extra=["--store-dir", store], http=False)
        data1 = events_of(srv.client("run", *job1), "result")[0]["data"]
        srv.kill9()  # no seal, no graceful anything
        shutil.rmtree(srv.dir, ignore_errors=True)

        srv = Server(extra=["--store-dir", store])
        series = srv.scrape()
        assert series["stacknoc_store_recovered_records"] == 1, series
        assert series["stacknoc_store_skipped_records"] == 0
        events = srv.client("run", *job1)
        accepted = events_of(events, "accepted")
        assert accepted and accepted[0]["cache"] == "hit", events
        result = events_of(events, "result")[0]
        assert result["cached"] is True
        assert result["data"] == data1, \
            "restarted server served different bytes"
        srv.client("run", *job2)  # appends a second record
        srv.shutdown()  # clean: seals the journal into a segment

        segs = [f for f in os.listdir(store) if f.endswith(".seg")]
        assert segs, f"no sealed segment after drain: {os.listdir(store)}"
        srv = Server(extra=["--store-dir", store])
        series = srv.scrape()
        assert series["stacknoc_store_recovered_records"] == 2, series
        assert series["stacknoc_store_segments"] >= 1
        for job in (job1, job2):
            events = srv.client("run", *job)
            assert events_of(events, "accepted")[0]["cache"] == "hit"
        srv.shutdown()
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_store_truncated_tail_is_skipped_not_fatal():
    """A crash-torn journal tail loses only the torn record: the clean
    prefix replays and the loss is visible in the skip counter."""
    store = tempfile.mkdtemp(prefix="stacknoc_torn_")
    job1 = [*SMALL, "--seed", "1"]
    job2 = [*SMALL, "--seed", "2"]
    try:
        srv = Server(extra=["--store-dir", store], http=False)
        srv.client("run", *job1)
        srv.client("run", *job2)
        srv.kill9()
        shutil.rmtree(srv.dir, ignore_errors=True)

        wal = os.path.join(store, "results.wal")
        with open(wal, "r+b") as f:
            f.truncate(os.path.getsize(wal) - 5)

        srv = Server(extra=["--store-dir", store])
        series = srv.scrape()
        assert series["stacknoc_store_recovered_records"] == 1, series
        assert series["stacknoc_store_skipped_records"] == 1, series
        hit = srv.client("run", *job1)
        assert events_of(hit, "accepted")[0]["cache"] == "hit"
        miss = srv.client("run", *job2)  # torn record re-simulates
        assert events_of(miss, "accepted")[0]["cache"] == "miss"
        assert len(events_of(miss, "result")) == 1
        srv.shutdown()
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_store_disk_full_degrades_to_memory_only():
    """ENOSPC on publish (journal -> /dev/full) never fails the job:
    the append failure is counted and the result is still served."""
    if not os.path.exists("/dev/full"):
        print("SKIP (no /dev/full)")
        return
    store = tempfile.mkdtemp(prefix="stacknoc_full_")
    try:
        os.symlink("/dev/full", os.path.join(store, "results.wal"))
        srv = Server(extra=["--store-dir", store])
        events = srv.client("run", *SMALL)
        assert len(events_of(events, "result")) == 1, events
        series = srv.scrape()
        assert series["stacknoc_store_append_failures_total"] >= 1
        assert series["stacknoc_jobs_failed_total"] == 0
        # The result is still cached in memory.
        again = srv.client("run", *SMALL)
        assert events_of(again, "accepted")[0]["cache"] == "hit"
        srv.shutdown()
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_max_queue_sheds_with_retry_after():
    """One worker, queue bound 1: the third concurrent submission is
    shed with a structured retry_after_ms, and succeeds once the queue
    drains."""
    srv = Server(extra=["--max-queue", "1"])
    try:
        running = srv.client_bg("run", *LONG, "--seed", "1")
        srv.wait_status(lambda st: st["busy"] == 1)
        queued = srv.client_bg("run", *LONG, "--seed", "2")
        srv.wait_status(lambda st: st["queued"] == 1)

        shed = srv.client("run", *SMALL, "--seed", "3", expect_rc=1)
        err = events_of(shed, "error")[0]
        assert err.get("shed") is True, shed
        assert err["retry_after_ms"] > 0, shed
        assert "queue full" in err["reason"], shed

        for proc in (running, queued):
            rc, events = bg_events(proc)
            assert rc == 0 and len(events_of(events, "result")) == 1

        ok = srv.client("run", *SMALL, "--seed", "3")
        assert len(events_of(ok, "result")) == 1
        series = srv.scrape()
        assert series["stacknoc_jobs_shed_total"] == 1
        assert series["stacknoc_jobs_submitted_total"] == 3
    finally:
        srv.shutdown()


def test_sigterm_drains_gracefully():
    """SIGTERM mid-job: the running job finishes and gets its result,
    new submissions are refused with draining=true, the store seals,
    and the server exits 0 without being told twice."""
    store = tempfile.mkdtemp(prefix="stacknoc_drain_")
    try:
        srv = Server(extra=["--store-dir", store], http=False)
        running = srv.client_bg("run", *LONG, "--seed", "1")
        srv.wait_status(lambda st: st["busy"] == 1)
        srv.proc.send_signal(signal.SIGTERM)

        deadline = time.time() + 10
        rejected = None
        while time.time() < deadline:
            events = srv.client("run", *SMALL, "--seed", "9",
                                expect_rc=None)
            errs = events_of(events, "error")
            if errs and errs[0].get("draining") is True:
                rejected = errs[0]
                break
            time.sleep(0.1)
        assert rejected is not None, "drain rejection never observed"
        assert "draining" in rejected["reason"]

        rc, events = bg_events(running)
        assert rc == 0, "in-flight job lost during drain"
        assert len(events_of(events, "result")) == 1

        srv.proc.wait(timeout=30)
        assert srv.proc.returncode == 0
        segs = [f for f in os.listdir(store) if f.endswith(".seg")]
        assert segs, f"store not sealed on drain: {os.listdir(store)}"
        shutil.rmtree(srv.dir, ignore_errors=True)
    finally:
        shutil.rmtree(store, ignore_errors=True)


def test_client_connect_retry_rides_out_restart():
    """--connect-retries: a client launched before the server exists
    connects once the socket appears."""
    holder = tempfile.mkdtemp(prefix="stacknoc_retry_")
    sock = os.path.join(holder, "late.sock")
    try:
        proc = subprocess.Popen(
            [CLIENT, "--socket", sock, "--connect-retries", "100",
             "--connect-backoff-ms", "50", "status"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        time.sleep(1.0)
        assert proc.poll() is None, \
            f"client gave up early: {proc.communicate()}"
        serve = subprocess.Popen(
            [SERVE, "--socket", sock, "--workers", "1"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            out, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, f"client failed: {err}"
            assert '"event":"status"' in out, out
            assert '"workers":1' in out, out
        finally:
            serve.terminate()
            serve.wait(timeout=30)
    finally:
        shutil.rmtree(holder, ignore_errors=True)


def main():
    global SERVE, CLIENT
    if len(sys.argv) > 2:
        SERVE, CLIENT = sys.argv[1], sys.argv[2]
    for binary in (SERVE, CLIENT):
        assert binary and os.path.exists(binary), \
            "pass the stacknoc_serve and stacknoc_client paths"
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
