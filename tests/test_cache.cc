/**
 * @file
 * Unit tests for the tag array storage structure.
 */

#include <gtest/gtest.h>

#include "cache/tag_array.hh"

namespace stacknoc {
namespace {

using cache::TagArray;
using cache::TagEntry;

TEST(TagArray, FindMissOnEmpty)
{
    TagArray tags(4, 2);
    EXPECT_EQ(tags.find(0x10), nullptr);
    EXPECT_EQ(tags.validCount(), 0);
}

TEST(TagArray, AllocateThenFind)
{
    TagArray tags(4, 2);
    TagEntry evicted;
    TagEntry *e = tags.allocate(0x10, &evicted);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->valid);
    EXPECT_EQ(e->addr, 0x10u);
    EXPECT_EQ(tags.find(0x10), e);
    EXPECT_EQ(tags.validCount(), 1);
}

TEST(TagArray, SetMapping)
{
    // addr % numSets selects the set: 0x10 and 0x14 live in different
    // sets of a 4-set array; 0x10 and 0x20 collide.
    TagArray tags(4, 1);
    tags.allocate(0x10, nullptr);
    tags.allocate(0x11, nullptr);
    EXPECT_EQ(tags.validCount(), 2);
    TagEntry evicted;
    tags.allocate(0x14, &evicted); // evicts 0x10 (same set, 1 way)
    EXPECT_EQ(evicted.addr, 0x10u);
    EXPECT_EQ(tags.find(0x10), nullptr);
    EXPECT_NE(tags.find(0x14), nullptr);
}

TEST(TagArray, LruVictimisation)
{
    TagArray tags(1, 3);
    tags.allocate(1, nullptr);
    tags.allocate(2, nullptr);
    tags.allocate(3, nullptr);
    // Touch 1 and 3; 2 becomes LRU.
    tags.find(1);
    tags.find(3);
    TagEntry evicted;
    tags.allocate(4, &evicted);
    EXPECT_EQ(evicted.addr, 2u);
}

TEST(TagArray, PinnedEntriesAreNotEvicted)
{
    TagArray tags(1, 2);
    TagEntry *a = tags.allocate(1, nullptr);
    a->pinned = true;
    tags.allocate(2, nullptr);
    TagEntry evicted;
    TagEntry *c = tags.allocate(3, &evicted);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(evicted.addr, 2u); // 1 was pinned, 2 had to go
    // Now both remaining entries pinned -> allocation fails.
    c->pinned = true;
    EXPECT_EQ(tags.allocate(4, &evicted), nullptr);
}

TEST(TagArray, Invalidate)
{
    TagArray tags(2, 2);
    tags.allocate(5, nullptr);
    EXPECT_TRUE(tags.invalidate(5));
    EXPECT_FALSE(tags.invalidate(5));
    EXPECT_EQ(tags.find(5), nullptr);
    EXPECT_EQ(tags.validCount(), 0);
}

TEST(TagArray, AnyResidentSkipsPinned)
{
    TagArray tags(2, 2);
    EXPECT_EQ(tags.anyResident(0), nullptr);
    TagEntry *a = tags.allocate(7, nullptr);
    a->pinned = true;
    EXPECT_EQ(tags.anyResident(1), nullptr);
    tags.allocate(8, nullptr);
    const TagEntry *r = tags.anyResident(2);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->addr, 8u);
}

TEST(TagArray, AnyResidentCoversDifferentSalts)
{
    TagArray tags(4, 4);
    for (BlockAddr a = 0; a < 8; ++a)
        tags.allocate(a, nullptr);
    bool seen_different = false;
    const TagEntry *first = tags.anyResident(0);
    for (std::uint64_t salt = 1; salt < 32; ++salt) {
        if (tags.anyResident(salt) != first)
            seen_different = true;
    }
    EXPECT_TRUE(seen_different);
}

TEST(TagArray, AllocateOfResidentBlockPanics)
{
    TagArray tags(2, 2);
    tags.allocate(9, nullptr);
    EXPECT_DEATH(tags.allocate(9, nullptr), "allocate of resident");
}

} // namespace
} // namespace stacknoc
