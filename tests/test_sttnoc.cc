/**
 * @file
 * Unit tests for the paper's contribution: region partitioning, parent
 * maps, restricted routing, and the bank-aware policy mechanics.
 */

#include <gtest/gtest.h>

#include <set>

#include "sttnoc/bank_aware_policy.hh"
#include "sttnoc/estimator.hh"
#include "sttnoc/parent_map.hh"
#include "sttnoc/region_map.hh"
#include "sttnoc/region_routing.hh"

namespace stacknoc {
namespace {

using sttnoc::EstimatorKind;
using sttnoc::ParentMap;
using sttnoc::RegionConfig;
using sttnoc::RegionMap;
using sttnoc::TsbPlacement;

const MeshShape kShape(8, 8, 2);

TEST(RegionMap, FourQuadrantsMatchFigure4)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    EXPECT_EQ(rm.numRegions(), 4);
    // Region 0 is the top-left 4x4 quadrant; its corner TSB is cache
    // node 91 under core node 27, exactly as in Figures 4 and 5.
    EXPECT_EQ(rm.tsbCacheNode(0), 91);
    EXPECT_EQ(rm.tsbCoreNode(0), 27);
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(64)), 0);
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(91)), 0);
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(68)), 1);  // (4,0) top-right
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(96)), 2);  // (0,4) bottom-left
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(127)), 3); // (7,7) bottom-right
    // All four TSBs hug the mesh centre.
    EXPECT_EQ(rm.tsbCacheNode(1), kShape.node(4, 3, 1));
    EXPECT_EQ(rm.tsbCacheNode(2), kShape.node(3, 4, 1));
    EXPECT_EQ(rm.tsbCacheNode(3), kShape.node(4, 4, 1));
}

TEST(RegionMap, EveryBankHasExactlyOneRegion)
{
    for (int regions : {4, 8, 16}) {
        RegionMap rm(kShape, RegionConfig{regions, TsbPlacement::Corner});
        std::vector<int> count(static_cast<std::size_t>(regions), 0);
        for (BankId b = 0; b < rm.numBanks(); ++b) {
            const int r = rm.regionOf(b);
            ASSERT_GE(r, 0);
            ASSERT_LT(r, regions);
            ++count[static_cast<std::size_t>(r)];
        }
        for (int r = 0; r < regions; ++r)
            EXPECT_EQ(count[static_cast<std::size_t>(r)], 64 / regions);
    }
}

TEST(RegionMap, TsbLiesInItsOwnRegion)
{
    for (int regions : {4, 8, 16}) {
        for (auto placement :
             {TsbPlacement::Corner, TsbPlacement::Stagger}) {
            RegionMap rm(kShape, RegionConfig{regions, placement});
            for (int r = 0; r < regions; ++r) {
                EXPECT_EQ(rm.regionOf(rm.bankOfNode(rm.tsbCacheNode(r))),
                          r);
            }
        }
    }
}

TEST(RegionMap, StaggeredTsbColumnsAreDistinct)
{
    for (int regions : {4, 8}) {
        RegionMap rm(kShape, RegionConfig{regions, TsbPlacement::Stagger});
        std::set<int> columns;
        for (int r = 0; r < regions; ++r)
            columns.insert(kShape.coord(rm.tsbCacheNode(r)).x);
        EXPECT_EQ(static_cast<int>(columns.size()), regions);
    }
}

TEST(RegionMap, EightRegionsAreFourByTwoTiles)
{
    RegionMap rm(kShape, RegionConfig{8, TsbPlacement::Corner});
    // Banks (0,0) and (3,1) share a region; (0,2) starts a new one.
    EXPECT_EQ(rm.regionOf(rm.bankOfNode(kShape.node(0, 0, 1))),
              rm.regionOf(rm.bankOfNode(kShape.node(3, 1, 1))));
    EXPECT_NE(rm.regionOf(rm.bankOfNode(kShape.node(0, 0, 1))),
              rm.regionOf(rm.bankOfNode(kShape.node(0, 2, 1))));
    EXPECT_NE(rm.regionOf(rm.bankOfNode(kShape.node(0, 0, 1))),
              rm.regionOf(rm.bankOfNode(kShape.node(4, 0, 1))));
}

TEST(ParentMap, PaperExampleChildren)
{
    // "router 91 manages traffic to cache bank 75, 82 and 89 and router
    //  90 manages traffic to cache banks 74, 81 and 88" (Section 3.4).
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(75)), 91);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(82)), 91);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(89)), 91);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(74)), 90);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(81)), 90);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(88)), 90);
    // "The innermost corner three nodes in each region ... are managed by
    //  the region-TSB node vertically above in the core layer (node 27)."
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(91)), 27);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(90)), 27);
    EXPECT_EQ(pm.parentOf(rm.bankOfNode(83)), 27);
}

TEST(ParentMap, EveryBankHasAParentOnItsTsbPath)
{
    for (int regions : {4, 8, 16}) {
        for (int hops : {1, 2, 3}) {
            RegionMap rm(kShape,
                         RegionConfig{regions, TsbPlacement::Corner});
            ParentMap pm(rm, hops);
            for (BankId b = 0; b < rm.numBanks(); ++b) {
                const NodeId parent = pm.parentOf(b);
                ASSERT_NE(parent, kInvalidNode);
                const auto path = pm.tsbPathTo(b);
                const int len = static_cast<int>(path.size()) - 1;
                if (len >= hops) {
                    // Parent sits exactly `hops` before the bank.
                    EXPECT_EQ(path[static_cast<std::size_t>(len - hops)],
                              parent);
                    EXPECT_EQ(kShape.hopDistance(
                                  parent, rm.nodeOfBank(b)), hops);
                } else {
                    EXPECT_EQ(parent,
                              rm.tsbCoreNode(rm.regionOf(b)));
                }
            }
        }
    }
}

TEST(ParentMap, ChildListsAreConsistent)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    int total_children = 0;
    for (NodeId n = 0; n < kShape.totalNodes(); ++n) {
        for (const BankId b : pm.childrenOf(n)) {
            EXPECT_EQ(pm.parentOf(b), n);
            ++total_children;
        }
    }
    EXPECT_EQ(total_children, rm.numBanks());
}

TEST(RegionRouting, RestrictedRequestsDescendOnlyAtTsbs)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    sttnoc::RegionRouting routing(rm);
    noc::Topology topo(kShape, 1, 1);

    std::set<NodeId> tsb_cores;
    for (int r = 0; r < rm.numRegions(); ++r)
        tsb_cores.insert(rm.tsbCoreNode(r));

    for (NodeId core = 0; core < 64; ++core) {
        for (NodeId cache = 64; cache < 128; ++cache) {
            auto pkt = noc::makePacket(noc::PacketClass::WritebackReq,
                                       core, cache);
            pkt->destBank = rm.bankOfNode(cache);
            NodeId here = core;
            int hops = 0;
            while (here != cache) {
                const noc::Dir d = routing.route(here, *pkt);
                if (d == noc::Dir::Down)
                    EXPECT_TRUE(tsb_cores.count(here))
                        << "descended at non-TSB node " << here;
                here = topo.neighbor(here, d);
                ASSERT_NE(here, kInvalidNode);
                ASSERT_LT(++hops, 64);
            }
        }
    }
}

TEST(RegionRouting, RestrictedPathPassesThroughParent)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::RegionRouting routing(rm);
    noc::Topology topo(kShape, 1, 1);

    for (NodeId core : {0, 7, 27, 46, 48, 63}) {
        for (NodeId cache = 64; cache < 128; ++cache) {
            auto pkt = noc::makePacket(noc::PacketClass::ReadReq, core,
                                       cache);
            pkt->destBank = rm.bankOfNode(cache);
            const NodeId parent = pm.parentOf(pkt->destBank);
            bool passed = core == parent;
            NodeId here = core;
            while (here != cache) {
                here = topo.neighbor(here, routing.route(here, *pkt));
                passed |= here == parent;
            }
            EXPECT_TRUE(passed)
                << core << "->" << cache << " missed parent " << parent;
        }
    }
}

TEST(RegionRouting, UnrestrictedTrafficUsesAllTsvs)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    sttnoc::RegionRouting routing(rm);
    // A response from cache node 100 to core 3 ascends immediately at its
    // own column (Z first), not at a TSB.
    auto pkt = noc::makePacket(noc::PacketClass::DataResp, 100, 3);
    EXPECT_EQ(routing.route(100, *pkt), noc::Dir::Up);
    // Coherence from core 0 to cache 127 descends immediately too.
    auto coh = noc::makePacket(noc::PacketClass::CohCtrl, 0, 127);
    EXPECT_EQ(routing.route(0, *coh), noc::Dir::Down);
}

TEST(WindowEstimator, BaseRttMatchesTopologyDistance)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    sttnoc::WindowEstimator est(rm, pm, params);
    // Two-hop child: 6*2+5 = 17 contention-free round-trip cycles.
    EXPECT_EQ(est.baseRtt(rm.bankOfNode(75)), 17u);
    // Bank 91 is parented by core node 27, one vertical hop away.
    EXPECT_EQ(est.baseRtt(rm.bankOfNode(91)), 11u);
}

TEST(WindowEstimator, ProbeTagAndAck)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    params.windowN = 4;
    sttnoc::WindowEstimator est(rm, pm, params);

    const BankId child = rm.bankOfNode(75);
    const NodeId parent = pm.parentOf(child);

    auto mk = [&](Cycle) {
        auto p = noc::makePacket(noc::PacketClass::WriteReq, 7, 75);
        p->destBank = child;
        return p;
    };

    // First forward is tagged; next three are not (window of 1, N=4).
    auto p0 = mk(0);
    est.onForward(child, *p0, parent, 100);
    EXPECT_EQ(p0->probeStamp, 100 & 0xff);
    EXPECT_EQ(p0->probeParent, parent);
    auto p1 = mk(1);
    est.onForward(child, *p1, parent, 101);
    EXPECT_EQ(p1->probeStamp, -1);

    // Echo arrives: RTT 37 vs base 17 -> congestion (37-17)/2 = 10.
    auto ack = noc::makePacket(noc::PacketClass::ProbeAck, 75, parent);
    ack->info.origin = static_cast<std::uint32_t>(child);
    ack->info.aux = static_cast<std::uint16_t>(p0->probeStamp);
    est.onProbeAck(*ack, 137);
    EXPECT_EQ(est.estimate(child, 140), 10u);

    // Uncongested echo resets the estimate to zero.
    auto p4 = mk(4);
    est.onForward(child, *p4, parent, 200); // count=2
    auto p5 = mk(5);
    est.onForward(child, *p5, parent, 201); // count=3
    auto p6 = mk(6);
    est.onForward(child, *p6, parent, 202); // count=4 -> tagged
    EXPECT_GE(p6->probeStamp, 0);
    auto ack2 = noc::makePacket(noc::PacketClass::ProbeAck, 75, parent);
    ack2->info.origin = static_cast<std::uint32_t>(child);
    ack2->info.aux = static_cast<std::uint16_t>(p6->probeStamp);
    est.onProbeAck(*ack2, 202 + 17);
    EXPECT_EQ(est.estimate(child, 220), 0u);
}

TEST(WindowEstimator, StaleAckIgnored)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    sttnoc::WindowEstimator est(rm, pm, params);
    const BankId child = rm.bankOfNode(75);
    auto ack = noc::makePacket(noc::PacketClass::ProbeAck, 75, 91);
    ack->info.origin = static_cast<std::uint32_t>(child);
    ack->info.aux = 99;
    est.onProbeAck(*ack, 500); // nothing outstanding: must be a no-op
    EXPECT_EQ(est.estimate(child, 501), 0u);
}

TEST(BankAwarePolicy, WriteForwardOpensBusyWindow)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    params.estimator = EstimatorKind::Simple;
    sttnoc::BankAwarePolicy policy(
        rm, pm, params,
        sttnoc::makeEstimator(EstimatorKind::Simple, rm, pm, params,
                              nullptr));

    const BankId bank = rm.bankOfNode(75);
    const NodeId parent = pm.parentOf(bank); // 91

    // A store write forwarded at the parent marks the bank busy for
    // pathDelay (2 hops: 3*2+2 = 8) + 0 + 33 = 41 cycles.
    auto st = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    st->destBank = bank;
    EXPECT_TRUE(policy.eligible(parent, *st, 100));
    policy.onForward(parent, *st, 100);
    EXPECT_EQ(policy.busyUntil(bank), 141u);

    // In the default Priority mode a second store to the same bank is
    // still eligible but drops to the lowest arbitration class...
    auto st2 = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    st2->destBank = bank;
    EXPECT_TRUE(policy.eligible(parent, *st2, 110));
    EXPECT_EQ(policy.priorityClass(parent, *st2, 110), 2);
    // ...but only at its parent router...
    EXPECT_EQ(policy.priorityClass(90, *st2, 110), 1);
    // ...and only while the window (minus the path delay) runs.
    EXPECT_EQ(policy.priorityClass(parent, *st2, 133), 1);

    // Loads are never de-prioritised, even toward the busy bank.
    auto rd = noc::makePacket(noc::PacketClass::ReadReq, 7, 75);
    rd->destBank = bank;
    EXPECT_TRUE(policy.eligible(parent, *rd, 110));
    EXPECT_EQ(policy.priorityClass(parent, *rd, 110), 1);

    // A store to a different (idle) child keeps normal priority.
    auto other = noc::makePacket(noc::PacketClass::StoreWrite, 7, 82);
    other->destBank = rm.bankOfNode(82);
    EXPECT_EQ(policy.priorityClass(parent, *other, 110), 1);
}

TEST(BankAwarePolicy, CoherenceAndResponsesOutrankRequests)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    sttnoc::BankAwarePolicy policy(
        rm, pm, params,
        sttnoc::makeEstimator(EstimatorKind::Simple, rm, pm, params,
                              nullptr));
    auto coh = noc::makePacket(noc::PacketClass::CohCtrl, 64, 0);
    auto resp = noc::makePacket(noc::PacketClass::DataResp, 64, 0);
    auto rd = noc::makePacket(noc::PacketClass::ReadReq, 0, 75);
    EXPECT_EQ(policy.priorityClass(91, *coh, 0), 0);
    EXPECT_EQ(policy.priorityClass(91, *resp, 0), 0);
    EXPECT_EQ(policy.priorityClass(91, *rd, 0), 1);
}

TEST(BankAwarePolicy, HoldModeBlocksWritesInWindow)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    params.estimator = EstimatorKind::Simple;
    params.delayMode = sttnoc::DelayMode::Hold;
    params.holdCap = 20;
    sttnoc::BankAwarePolicy policy(
        rm, pm, params,
        sttnoc::makeEstimator(EstimatorKind::Simple, rm, pm, params,
                              nullptr));
    const BankId bank = rm.bankOfNode(75);
    const NodeId parent = pm.parentOf(bank);

    auto st = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    st->destBank = bank;
    policy.onForward(parent, *st, 0); // busy until 41

    auto st2 = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    st2->destBank = bank;
    // Held while arrival (now + 8) < 41; the starvation cap releases
    // after 20 cycles of holding.
    EXPECT_FALSE(policy.eligible(parent, *st2, 5));
    EXPECT_FALSE(policy.eligible(parent, *st2, 24));
    EXPECT_TRUE(policy.eligible(parent, *st2, 25)); // 5 + holdCap
    EXPECT_EQ(policy.stats().counter("hold_cap_releases").value(), 1u);

    // A fresh store after the window flows immediately.
    auto st3 = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    st3->destBank = bank;
    EXPECT_TRUE(policy.eligible(parent, *st3, 50));

    // Loads are never blocked, even in Hold mode.
    auto rd = noc::makePacket(noc::PacketClass::ReadReq, 7, 75);
    rd->destBank = bank;
    EXPECT_TRUE(policy.eligible(parent, *rd, 5));
}

TEST(BankAwarePolicy, ReadsDoNotMarkBusy)
{
    RegionMap rm(kShape, RegionConfig{4, TsbPlacement::Corner});
    ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    sttnoc::BankAwarePolicy policy(
        rm, pm, params,
        sttnoc::makeEstimator(EstimatorKind::Simple, rm, pm, params,
                              nullptr));
    const BankId bank = rm.bankOfNode(75);
    auto rd = noc::makePacket(noc::PacketClass::ReadReq, 7, 75);
    rd->destBank = bank;
    policy.onForward(pm.parentOf(bank), *rd, 50);
    EXPECT_EQ(policy.busyUntil(bank), 0u);
}

} // namespace
} // namespace stacknoc
