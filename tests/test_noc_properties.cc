/**
 * @file
 * Network-level property tests: every region configuration delivers all
 * restricted traffic through live routers, the bank-aware policy (in
 * both delay modes) never starves a packet, and vnet isolation holds
 * end to end.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "sttnoc/region_routing.hh"
#include "test_util.hh"

namespace stacknoc {
namespace {

using noc::PacketClass;
using sttnoc::RegionConfig;
using sttnoc::TsbPlacement;

class CountingSink : public noc::NetworkClient
{
  public:
    void deliver(noc::PacketPtr, Cycle) override { ++count; }
    std::uint64_t count = 0;
};

struct RegionParam
{
    int regions;
    TsbPlacement placement;
};

class RegionNetwork : public ::testing::TestWithParam<RegionParam>
{
};

TEST_P(RegionNetwork, AllRestrictedPairsDeliverThroughLiveRouters)
{
    const auto param = GetParam();
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap regions(
        shape, RegionConfig{param.regions, param.placement});
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<sttnoc::RegionRouting>(regions),
                     policy);
    for (int r = 0; r < regions.numRegions(); ++r)
        net.topology().widenDownLink(regions.tsbCoreNode(r), 2);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    // One request from every core to every 8th bank (512 packets).
    std::uint64_t sent = 0;
    for (NodeId core = 0; core < 64; ++core) {
        for (NodeId bank_node = 64 + (core % 8); bank_node < 128;
             bank_node += 8) {
            auto pkt = noc::makePacket(PacketClass::ReadReq, core,
                                       bank_node);
            pkt->destBank = regions.bankOfNode(bank_node);
            net.ni(core).send(std::move(pkt), 0);
            ++sent;
        }
    }
    EXPECT_TRUE(testutil::runUntilDrained(sim, net, 60000));
    std::uint64_t received = 0;
    for (NodeId n = 64; n < 128; ++n)
        received += sinks[static_cast<std::size_t>(n)].count;
    EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RegionNetwork,
    ::testing::Values(RegionParam{4, TsbPlacement::Corner},
                      RegionParam{4, TsbPlacement::Stagger},
                      RegionParam{8, TsbPlacement::Corner},
                      RegionParam{8, TsbPlacement::Stagger},
                      RegionParam{16, TsbPlacement::Corner},
                      RegionParam{16, TsbPlacement::Stagger}));

class DelayModes
    : public ::testing::TestWithParam<sttnoc::DelayMode>
{
};

TEST_P(DelayModes, HeavyWriteStormNeverStarvesAnyPacket)
{
    // Saturating store-write traffic to few hot banks plus background
    // reads: with the bank-aware policy active in either delay mode,
    // every single packet must still be delivered (the starvation cap
    // and priority classes guarantee progress).
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap regions(shape, RegionConfig{});
    sttnoc::ParentMap parents(regions, 2);
    sttnoc::SttAwareParams params;
    params.estimator = sttnoc::EstimatorKind::Window;
    params.delayMode = GetParam();
    sttnoc::BankAwarePolicy policy(
        regions, parents, params,
        sttnoc::makeEstimator(sttnoc::EstimatorKind::Window, regions,
                              parents, params, nullptr));
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<sttnoc::RegionRouting>(regions),
                     policy);
    for (int r = 0; r < regions.numRegions(); ++r)
        net.topology().widenDownLink(regions.tsbCoreNode(r), 2);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n) {
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);
        net.ni(n).setProbeSink(&policy);
    }

    Rng rng(17);
    std::uint64_t sent = 0;
    const NodeId hot_banks[] = {75, 82, 89};
    for (Cycle t = 0; t < 1500; ++t) {
        for (NodeId core = 0; core < 64; ++core) {
            if (rng.chance(0.03)) {
                const NodeId bank = hot_banks[rng.below(3)];
                auto pkt = noc::makePacket(PacketClass::StoreWrite, core,
                                           bank);
                pkt->destBank = regions.bankOfNode(bank);
                net.ni(core).send(std::move(pkt), t);
                ++sent;
            }
            if (rng.chance(0.01)) {
                const NodeId bank =
                    static_cast<NodeId>(64 + rng.below(64));
                auto pkt = noc::makePacket(PacketClass::ReadReq, core,
                                           bank);
                pkt->destBank = regions.bankOfNode(bank);
                net.ni(core).send(std::move(pkt), t);
                ++sent;
            }
        }
        sim.step();
    }
    EXPECT_TRUE(testutil::runUntilDrained(sim, net, 120000));
    std::uint64_t received = 0;
    for (auto &s : sinks)
        received += s.count;
    // ProbeAck echoes land in the policy, not the sinks; everything the
    // test injected must arrive.
    EXPECT_EQ(received, sent);
}

INSTANTIATE_TEST_SUITE_P(Both, DelayModes,
                         ::testing::Values(sttnoc::DelayMode::Priority,
                                           sttnoc::DelayMode::Hold));

TEST(VnetIsolation, ResponsesCutThroughAWriteJam)
{
    // Saturate the write vnet toward one bank, then time a response
    // packet through the same region: it must arrive in near-baseline
    // time because it rides separate VCs.
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap regions(shape, RegionConfig{});
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<sttnoc::RegionRouting>(regions),
                     policy);
    for (int r = 0; r < regions.numRegions(); ++r)
        net.topology().widenDownLink(regions.tsbCoreNode(r), 2);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    for (int i = 0; i < 100; ++i) {
        for (NodeId core : {0, 1, 2, 3}) {
            auto pkt = noc::makePacket(PacketClass::StoreWrite, core, 75);
            pkt->destBank = regions.bankOfNode(75);
            net.ni(core).send(std::move(pkt), 0);
        }
    }
    sim.run(200); // the write jam is in full swing
    auto resp = noc::makePacket(PacketClass::DataResp, 91, 27);
    net.ni(91).send(resp, 200);
    sim.run(400);
    ASSERT_NE(resp->ejectedAt, kCycleNever);
    // Contention-free: 3 + 3*1 + 8 body flits = 14 cycles; allow slack
    // for local-port sharing but far below the hundreds of cycles the
    // write jam itself takes.
    EXPECT_LT(resp->ejectedAt - resp->createdAt, 80u);
}

} // namespace
} // namespace stacknoc
