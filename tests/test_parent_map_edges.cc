/**
 * @file
 * Edge cases of the parent map (Section 3.4 / Figure 4): banks closer
 * than H hops to their region's TSB entry have no cache-layer router H
 * hops upstream, so they must be parented by the core-layer TSB router
 * itself. Swept over H = 1..3 and the 4/8/16-region partitions.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/geometry.hh"
#include "sttnoc/parent_map.hh"
#include "sttnoc/region_map.hh"

namespace stacknoc::sttnoc {
namespace {

struct Edge
{
    int regions;
    TsbPlacement placement;
    int hops;
};

class ParentMapEdges : public ::testing::TestWithParam<Edge>
{
};

TEST_P(ParentMapEdges, CloseBanksParentAtTsbRouter)
{
    const Edge e = GetParam();
    const MeshShape shape(8, 8, 2);
    const RegionMap regions(shape,
                            RegionConfig{e.regions, e.placement});
    const ParentMap parents(regions, e.hops);

    int close_banks = 0;
    for (BankId b = 0; b < regions.numBanks(); ++b) {
        const std::vector<NodeId> path = parents.tsbPathTo(b);
        ASSERT_GE(path.size(), 1u) << "bank " << b;
        EXPECT_EQ(path.front(),
                  regions.tsbCacheNode(regions.regionOf(b)));
        EXPECT_EQ(path.back(), regions.nodeOfBank(b));

        const int dist = static_cast<int>(path.size()) - 1;
        const NodeId parent = parents.parentOf(b);
        if (dist < e.hops) {
            // No cache-layer router H hops upstream exists: the
            // core-layer TSB router re-orders for this bank.
            ++close_banks;
            EXPECT_EQ(parent,
                      regions.tsbCoreNode(regions.regionOf(b)))
                << "bank " << b << " at distance " << dist
                << " with H=" << e.hops;
        } else {
            EXPECT_EQ(parent,
                      path[path.size() - 1 -
                           static_cast<std::size_t>(e.hops)])
                << "bank " << b;
        }
    }
    // Every partition has banks near its TSB entries (at least the
    // TSB cell itself, at distance 0).
    EXPECT_GE(close_banks, e.regions);
}

TEST_P(ParentMapEdges, ChildrenListsAreConsistent)
{
    const Edge e = GetParam();
    const MeshShape shape(8, 8, 2);
    const RegionMap regions(shape,
                            RegionConfig{e.regions, e.placement});
    const ParentMap parents(regions, e.hops);

    std::set<BankId> seen;
    for (NodeId n = 0; n < shape.totalNodes(); ++n) {
        for (const BankId b : parents.childrenOf(n)) {
            EXPECT_EQ(parents.parentOf(b), n);
            EXPECT_TRUE(parents.isParent(n));
            EXPECT_TRUE(seen.insert(b).second)
                << "bank " << b << " has two parents";
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), regions.numBanks());
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParentMapEdges,
    ::testing::Values(
        Edge{4, TsbPlacement::Corner, 1},
        Edge{4, TsbPlacement::Corner, 2},
        Edge{4, TsbPlacement::Corner, 3},
        Edge{8, TsbPlacement::Corner, 1},
        Edge{8, TsbPlacement::Corner, 2},
        Edge{8, TsbPlacement::Corner, 3},
        Edge{16, TsbPlacement::Corner, 1},
        Edge{16, TsbPlacement::Corner, 2},
        Edge{16, TsbPlacement::Corner, 3},
        Edge{8, TsbPlacement::Stagger, 2},
        Edge{16, TsbPlacement::Stagger, 3}),
    [](const ::testing::TestParamInfo<Edge> &info) {
        const Edge &e = info.param;
        return "r" + std::to_string(e.regions) + "_h" +
               std::to_string(e.hops) + "_" +
               (e.placement == TsbPlacement::Corner ? "corner"
                                                    : "stagger");
    });

} // namespace
} // namespace stacknoc::sttnoc
