/**
 * @file
 * Unit tests for the simulation kernel: channels, simulator, statistics.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/channel.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

namespace stacknoc {
namespace {

TEST(Channel, LatencyOne)
{
    Channel<int> ch(1);
    ch.push(10, 7);
    EXPECT_FALSE(ch.receive(10).has_value());
    auto v = ch.receive(11);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
    EXPECT_FALSE(ch.receive(12).has_value());
}

TEST(Channel, LatencyThree)
{
    Channel<int> ch(3);
    ch.push(0, 1);
    EXPECT_FALSE(ch.ready(2));
    EXPECT_TRUE(ch.ready(3));
    EXPECT_EQ(*ch.receive(3), 1);
}

TEST(Channel, FifoOrder)
{
    Channel<int> ch(1);
    ch.push(0, 1);
    ch.push(0, 2);
    ch.push(1, 3);
    EXPECT_EQ(*ch.receive(1), 1);
    EXPECT_EQ(*ch.receive(1), 2);
    EXPECT_FALSE(ch.receive(1).has_value());
    EXPECT_EQ(*ch.receive(2), 3);
}

TEST(Channel, LateReceiveStillDelivers)
{
    Channel<int> ch(1);
    ch.push(0, 9);
    EXPECT_EQ(*ch.receive(100), 9);
}

class CountingComponent : public Ticking
{
  public:
    CountingComponent() : Ticking("counter") {}
    void tick(Cycle now) override
    {
        ++ticks;
        lastCycle = now;
    }
    int ticks = 0;
    Cycle lastCycle = 0;
};

TEST(Simulator, TicksComponents)
{
    Simulator sim;
    CountingComponent a, b;
    sim.add(&a);
    sim.add(&b);
    sim.run(10);
    EXPECT_EQ(a.ticks, 10);
    EXPECT_EQ(b.ticks, 10);
    EXPECT_EQ(a.lastCycle, 9u);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, CycleEndCallback)
{
    Simulator sim;
    CountingComponent a;
    sim.add(&a);
    int calls = 0;
    sim.onCycleEnd([&](Cycle) { ++calls; });
    sim.run(5);
    EXPECT_EQ(calls, 5);
}

TEST(Stats, Counter)
{
    stats::Group g("g");
    auto &c = g.counter("x");
    c.inc();
    c.inc(4);
    EXPECT_EQ(g.counter("x").value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, CounterIdentityByName)
{
    stats::Group g("g");
    g.counter("x").inc(3);
    EXPECT_EQ(g.counter("x").value(), 3u);
    EXPECT_EQ(g.counter("y").value(), 0u);
}

TEST(Stats, Average)
{
    stats::Group g("g");
    auto &a = g.average("lat");
    a.sample(10.0);
    a.sample(20.0);
    EXPECT_DOUBLE_EQ(a.mean(), 15.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Stats, DistributionPaperBins)
{
    // The Figure-3 binning: [0,16) [16,33) [33,66) [66,99) [99,132)
    // [132,165) and 165+.
    stats::Distribution d({16, 33, 66, 99, 132, 165});
    EXPECT_EQ(d.numBins(), 7u);
    d.sample(0);
    d.sample(15);
    d.sample(16);
    d.sample(32);
    d.sample(33);
    d.sample(164);
    d.sample(165);
    d.sample(1000);
    EXPECT_EQ(d.binCount(0), 2u);
    EXPECT_EQ(d.binCount(1), 2u);
    EXPECT_EQ(d.binCount(2), 1u);
    EXPECT_EQ(d.binCount(5), 1u);
    EXPECT_EQ(d.binCount(6), 2u);
    EXPECT_EQ(d.total(), 8u);
    EXPECT_DOUBLE_EQ(d.binFraction(0), 0.25);
    EXPECT_EQ(d.binLabel(0), "[0,16)");
    EXPECT_EQ(d.binLabel(6), "165+");
}

TEST(Stats, GroupDumpContainsNames)
{
    stats::Group g("net");
    g.counter("flits").inc(2);
    g.average("lat").sample(3.0);
    std::ostringstream os;
    g.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("net.flits 2"), std::string::npos);
    EXPECT_NE(s.find("net.lat"), std::string::npos);
}

TEST(Stats, GroupReset)
{
    stats::Group g("g");
    g.counter("c").inc(5);
    g.average("a").sample(1.0);
    auto &d = g.distribution("d", {10});
    d.sample(3);
    g.reset();
    EXPECT_EQ(g.counter("c").value(), 0u);
    EXPECT_EQ(g.average("a").count(), 0u);
    EXPECT_EQ(d.total(), 0u);
}

TEST(Stats, DistributionWeightedSamples)
{
    stats::Distribution d({10, 20});
    d.sample(5, 3);
    d.sample(15, 2);
    EXPECT_EQ(d.total(), 5u);
    EXPECT_EQ(d.binCount(0), 3u);
    EXPECT_EQ(d.binCount(1), 2u);
    EXPECT_DOUBLE_EQ(d.binFraction(0), 0.6);
}

TEST(Stats, DistributionBadEdgesPanic)
{
    EXPECT_DEATH(stats::Distribution({10, 10}),
                 "strictly increasing");
}

TEST(Channel, ZeroLatencyPanics)
{
    EXPECT_DEATH(Channel<int>(0), "latency must be");
}

TEST(Channel, StressInterleavedPushReceive)
{
    Channel<int> ch(2);
    int received = 0, sent = 0;
    for (Cycle t = 0; t < 1000; ++t) {
        if (t % 3 == 0) {
            ch.push(t, static_cast<int>(t));
            ++sent;
        }
        while (auto v = ch.receive(t)) {
            // FIFO and latency: value pushed at *v arrives at *v + 2.
            EXPECT_EQ(static_cast<Cycle>(*v) + 2, t);
            ++received;
        }
    }
    EXPECT_GT(received, 300);
    EXPECT_EQ(ch.inFlight(), static_cast<std::size_t>(sent - received));
}

} // namespace
} // namespace stacknoc
