/**
 * @file
 * Determinism matrix: every design scenario, run twice with identical
 * configuration, must produce bit-identical committed-instruction
 * counts and traffic statistics. This is the regression net that keeps
 * results reproducible across machines and refactorings.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/trace.hh"
#include "system/cmp_system.hh"

namespace stacknoc {
namespace {

struct Snapshot
{
    std::vector<std::uint64_t> committed;
    std::uint64_t injected = 0;
    std::uint64_t bankWrites = 0;
    std::uint64_t invs = 0;

    bool
    operator==(const Snapshot &o) const
    {
        return committed == o.committed && injected == o.injected &&
               bankWrites == o.bankWrites && invs == o.invs;
    }
};

Snapshot
runScenario(const system::Scenario &sc, Cycle interval_period = 0,
            std::uint64_t seed = 11, bool validate = false,
            Cycle cycles = 6000)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = sc;
    cfg.apps = {"streamcluster"};
    cfg.seed = seed;
    cfg.intervalPeriod = interval_period;
    cfg.validate = validate;
    system::CmpSystem sys(cfg);
    sys.run(cycles);
    Snapshot s;
    for (int c = 0; c < sys.numCores(); ++c)
        s.committed.push_back(sys.core(c).committed());
    s.injected =
        sys.network().stats().counter("packets_injected").value();
    s.bankWrites = sys.cacheStats().counter("bank_writes").value();
    s.invs = sys.cacheStats().counter("l2_invs_sent").value();
    return s;
}

class AllScenarios
    : public ::testing::TestWithParam<int>
{
  public:
    static std::vector<system::Scenario>
    scenarios()
    {
        std::vector<system::Scenario> out;
        for (const auto &sc : system::scenarios::figureSix())
            out.push_back(sc);
        out.push_back(system::scenarios::sttramBuff20());
        out.push_back(system::scenarios::sttram4TsbWbPlus1Vc());
        out.push_back(system::scenarios::sttramReadPriority());
        out.push_back(system::scenarios::sttram4TsbWbReadPriority());
        return out;
    }
};

TEST_P(AllScenarios, TwoRunsAreBitIdentical)
{
    const auto sc = scenarios()[static_cast<std::size_t>(GetParam())];
    const Snapshot a = runScenario(sc);
    const Snapshot b = runScenario(sc);
    EXPECT_TRUE(a == b) << sc.name;
    // And the run did real work.
    std::uint64_t total = 0;
    for (const auto c : a.committed)
        total += c;
    EXPECT_GT(total, 1000u) << sc.name;
}

TEST(Telemetry, ObserversDoNotPerturbSimulation)
{
    // Telemetry must be a pure observer: a run with full packet
    // tracing and interval sampling enabled is bit-identical to a run
    // with everything off.
    const auto sc = system::scenarios::sttram4TsbWb();
    const Snapshot off = runScenario(sc);

    telemetry::MemoryTraceSink sink;
    telemetry::PacketTracer tracer(1024, 1);
    tracer.setSink(&sink);
    telemetry::setTracer(&tracer);
    const Snapshot on = runScenario(sc, /*interval_period=*/500);
    tracer.flush();
    telemetry::setTracer(nullptr);

    EXPECT_TRUE(off == on);
    // And the tracer actually observed traffic.
    EXPECT_GT(sink.records().size(), 0u);
}

TEST(Validation, CheckersDoNotPerturbSimulationAcrossSeeds)
{
    // The invariant checkers are strict observers: across a sweep of
    // seeds, runs with checkers on must be bit-identical to runs with
    // checkers off. Any divergence means a checker mutated state.
    const auto sc = system::scenarios::sttram4TsbWb();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const Snapshot off =
            runScenario(sc, 0, seed, /*validate=*/false, 3000);
        const Snapshot on =
            runScenario(sc, 0, seed, /*validate=*/true, 3000);
        EXPECT_TRUE(off == on) << "seed " << seed;
        std::uint64_t total = 0;
        for (const auto c : on.committed)
            total += c;
        EXPECT_GT(total, 500u) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllScenarios, ::testing::Range(0, 10),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name =
            AllScenarios::scenarios()[static_cast<std::size_t>(
                info.param)].name;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

} // namespace
} // namespace stacknoc
