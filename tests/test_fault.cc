/**
 * @file
 * The fault-injection & resilience subsystem: spec parsing, per-site
 * stream determinism, write-retry accounting reconciling exactly,
 * recovery paths staying invariant-clean, thread-count bit-identity
 * with faults active, and the watchdog converting a wedged router into
 * a recorded diagnosis.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/fault_injector.hh"
#include "fault/fault_spec.hh"
#include "fault/watchdog.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"

namespace stacknoc {
namespace {

std::uint64_t
counterOf(const stats::Group &g, const char *name)
{
    const stats::Counter *c = g.findCounter(name);
    return c ? c->value() : 0;
}

// --------------------------------------------------------------- spec

TEST(FaultSpec, ParsesFullSpec)
{
    fault::FaultSpec spec;
    std::string err;
    ASSERT_TRUE(fault::parseFaultSpec(
        "stt_write_ber=1e-3,stt_write_retries=5,tsb_flit_ber=1e-6,"
        "link_flit_ber=2e-5,flit_retries=3,flit_retry_penalty=64,"
        "router_stuck=4:2200-2400",
        spec, err))
        << err;
    EXPECT_DOUBLE_EQ(spec.sttWriteBer, 1e-3);
    EXPECT_EQ(spec.sttWriteRetries, 5);
    EXPECT_DOUBLE_EQ(spec.tsbFlitBer, 1e-6);
    EXPECT_DOUBLE_EQ(spec.linkFlitBer, 2e-5);
    EXPECT_EQ(spec.flitRetries, 3);
    EXPECT_EQ(spec.flitRetryPenalty, Cycle{64});
    EXPECT_EQ(spec.stuckRouter, NodeId{4});
    EXPECT_EQ(spec.stuckFrom, Cycle{2200});
    EXPECT_EQ(spec.stuckTo, Cycle{2400});
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpec, EmptyAndZeroSpecsAreInactive)
{
    fault::FaultSpec spec;
    EXPECT_FALSE(spec.any());
    std::string err;
    ASSERT_TRUE(fault::parseFaultSpec("stt_write_ber=0", spec, err));
    EXPECT_FALSE(spec.any());
}

TEST(FaultSpec, RejectsMalformedInput)
{
    fault::FaultSpec spec;
    std::string err;
    EXPECT_FALSE(fault::parseFaultSpec("bogus=1", spec, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(fault::parseFaultSpec("stt_write_ber=2.0", spec, err));
    EXPECT_FALSE(fault::parseFaultSpec("stt_write_ber", spec, err));
    EXPECT_FALSE(fault::parseFaultSpec("router_stuck=4", spec, err));
    EXPECT_FALSE(
        fault::parseFaultSpec("router_stuck=4:300-200", spec, err));
    EXPECT_FALSE(fault::parseFaultSpec("stt_write_retries=99", spec,
                                       err));
}

TEST(FaultSpec, RoundTripsThroughToString)
{
    fault::FaultSpec spec;
    std::string err;
    ASSERT_TRUE(fault::parseFaultSpec(
        "stt_write_ber=1e-3,router_stuck=4:10-20", spec, err));
    fault::FaultSpec again;
    ASSERT_TRUE(fault::parseFaultSpec(spec.toString(), again, err))
        << spec.toString() << ": " << err;
    EXPECT_DOUBLE_EQ(again.sttWriteBer, spec.sttWriteBer);
    EXPECT_EQ(again.stuckRouter, spec.stuckRouter);
    EXPECT_EQ(again.stuckTo, spec.stuckTo);
}

// ---------------------------------------------------------- injector

TEST(FaultInjector, DrawsAreDeterministicPerSite)
{
    fault::FaultSpec spec;
    std::string err;
    ASSERT_TRUE(fault::parseFaultSpec("stt_write_ber=0.5", spec, err));
    const MeshShape shape(4, 4, 2);

    fault::FaultInjector a(spec, 42, shape, 16);
    fault::FaultInjector b(spec, 42, shape, 16);
    for (int i = 0; i < 256; ++i) {
        EXPECT_EQ(a.drawWriteFailure(3), b.drawWriteFailure(3));
        EXPECT_EQ(a.drawWriteFailure(7), b.drawWriteFailure(7));
    }

    // A different seed diverges somewhere within a few hundred draws.
    fault::FaultInjector c(spec, 43, shape, 16);
    int diffs = 0;
    for (int i = 0; i < 256; ++i)
        diffs += a.drawWriteFailure(3) != c.drawWriteFailure(3);
    EXPECT_GT(diffs, 0);
}

TEST(FaultInjector, ZeroRateDrawsNeverAdvanceState)
{
    // rate <= 0 must return false without consuming randomness, so a
    // zero-rate campaign is bit-identical to no campaign even for
    // sites that share a stream with an active fault class.
    fault::FaultSpec zero;
    const MeshShape shape(4, 4, 2);
    fault::FaultInjector inj(zero, 1, shape, 16);
    for (int i = 0; i < 64; ++i) {
        EXPECT_FALSE(inj.drawWriteFailure(0));
        EXPECT_FALSE(inj.drawPacketCorruption(0, 17, 5));
        EXPECT_FALSE(inj.routerStuckNow(0, static_cast<Cycle>(i)));
    }
    EXPECT_EQ(counterOf(inj.stats(), "router_stuck_cycles"), 0u);
}

// ------------------------------------------------- system-level runs

system::SystemConfig
faultConfig(const std::string &spec_text, int threads = 1,
            sttnoc::DelayMode mode = sttnoc::DelayMode::Priority)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.scenario.delayMode = mode;
    cfg.apps = {"tpcc"};
    cfg.seed = 11;
    cfg.threads = threads;
    cfg.validate = true;
    cfg.validation.failFast = false;
    if (!spec_text.empty()) {
        std::string err;
        EXPECT_TRUE(fault::parseFaultSpec(spec_text, cfg.faults, err))
            << err;
        cfg.faultsEnabled = cfg.faults.any();
    }
    return cfg;
}

TEST(FaultSystem, WriteRetryAccountingReconciles)
{
    noc::resetPacketIds();
    system::CmpSystem sys(faultConfig("stt_write_ber=1e-2"));
    sys.run(8000);

    ASSERT_NE(sys.faults(), nullptr);
    const stats::Group &g = sys.faults()->stats();
    const std::uint64_t failures = counterOf(g, "stt_write_failures");
    const std::uint64_t rounds = counterOf(g, "stt_write_retry_rounds");
    const std::uint64_t abandoned =
        counterOf(g, "stt_writes_abandoned");
    ASSERT_GT(failures, 0u) << "ber=1e-2 over 8000 cycles must fail "
                               "at least one write";
    // Every draw failure either buys another retry round or abandons
    // the write; the three counters must reconcile exactly.
    EXPECT_EQ(rounds, failures - abandoned);
    EXPECT_EQ(sys.validation()->violations().size(), 0u);
}

TEST(FaultSystem, LowRateRunStaysInvariantClean)
{
    noc::resetPacketIds();
    system::CmpSystem sys(
        faultConfig("stt_write_ber=1e-3,link_flit_ber=2e-4,"
                    "tsb_flit_ber=1e-4"));
    sys.warmup(1000);
    sys.run(8000);
    EXPECT_EQ(sys.validation()->violations().size(), 0u);

    const stats::Group &g = sys.faults()->stats();
    // Link accounting: every corrupted packet ends recovered or
    // dropped (none may be still pending at these budgets and rates).
    EXPECT_EQ(counterOf(g, "link_packets_corrupted"),
              counterOf(g, "link_packets_recovered") +
                  counterOf(g, "link_packets_dropped"));
}

TEST(FaultSystem, ExtremeRateAbandonsWrites)
{
    noc::resetPacketIds();
    system::CmpSystem sys(
        faultConfig("stt_write_ber=0.9,stt_write_retries=1"));
    sys.run(6000);
    const stats::Group &g = sys.faults()->stats();
    EXPECT_GT(counterOf(g, "stt_writes_abandoned"), 0u);
    EXPECT_EQ(counterOf(g, "stt_write_retry_rounds"),
              counterOf(g, "stt_write_failures") -
                  counterOf(g, "stt_writes_abandoned"));
    // Even at 90% write failure the system must not wedge or leak.
    EXPECT_EQ(sys.validation()->violations().size(), 0u);
}

TEST(FaultSystem, HoldModeBusyNackConservesPackets)
{
    noc::resetPacketIds();
    system::CmpSystem sys(faultConfig("stt_write_ber=5e-2", 1,
                                      sttnoc::DelayMode::Hold));
    sys.run(8000);
    EXPECT_EQ(sys.validation()->violations().size(), 0u);
    // The recovery path was actually exercised.
    EXPECT_GT(counterOf(sys.faults()->stats(), "busy_nacks_sent"), 0u);
    ASSERT_NE(sys.policy(), nullptr);
    EXPECT_GT(counterOf(sys.policy()->stats(), "busy_nacks"), 0u);
}

TEST(FaultSystem, ResultsBitIdenticalAcrossThreadCounts)
{
    const char *spec =
        "stt_write_ber=1e-2,link_flit_ber=2e-4,tsb_flit_ber=1e-4";
    auto digest = [&](int threads) {
        noc::resetPacketIds();
        system::CmpSystem sys(faultConfig(spec, threads));
        sys.warmup(500);
        sys.run(4000);
        EXPECT_EQ(sys.validation()->violations().size(), 0u)
            << "threads=" << threads;
        std::ostringstream os;
        sys.dumpStats(os);
        return os.str();
    };
    const std::string t1 = digest(1);
    EXPECT_EQ(t1, digest(2));
    EXPECT_EQ(t1, digest(4));
}

TEST(FaultSystem, ZeroRateSpecMatchesNoSpec)
{
    // With every rate zero the injector must be a strict no-op: the
    // shared statistic groups (everything except the extra "faults"
    // group itself) are bit-identical to a run without an injector.
    auto shared_digest = [&](bool with_injector) {
        noc::resetPacketIds();
        system::SystemConfig cfg = faultConfig("");
        if (with_injector) {
            cfg.faultsEnabled = true; // all-zero spec, forced on
        }
        system::CmpSystem sys(cfg);
        sys.warmup(500);
        sys.run(4000);
        std::ostringstream os;
        sys.cacheStats().dump(os);
        sys.coreStats().dump(os);
        sys.memStats().dump(os);
        sys.network().stats().dump(os);
        if (sys.policy())
            sys.policy()->stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(shared_digest(false), shared_digest(true));
}

// ----------------------------------------------------------- watchdog

TEST(Watchdog, WedgedRouterTriggersDeadlockDiagnosis)
{
    noc::resetPacketIds();
    // Wedge a cache-layer router forever; traffic through it stops
    // draining and the watchdog must fire (recorded, not fatal, so the
    // test can inspect the diagnosis).
    system::SystemConfig cfg =
        faultConfig("router_stuck=16:500-100000000");
    cfg.validate = false; // conservation legitimately stalls mid-wedge
    cfg.watchdogEnabled = true;
    cfg.watchdog.stallCycles = 2000;
    cfg.watchdog.failFast = false;
    system::CmpSystem sys(cfg);
    sys.run(20000);

    ASSERT_NE(sys.watchdogProbe(), nullptr);
    EXPECT_TRUE(sys.watchdogProbe()->fired());
    EXPECT_GT(sys.watchdogProbe()->firedAt(), Cycle{500});
    EXPECT_NE(sys.watchdogProbe()->diagnosis().find("deadlock"),
              std::string::npos);
}

TEST(Watchdog, StarvationBoundCatchesAgedPacket)
{
    noc::resetPacketIds();
    system::SystemConfig cfg =
        faultConfig("router_stuck=16:500-100000000");
    cfg.validate = false;
    cfg.watchdogEnabled = true;
    cfg.watchdog.stallCycles = 1000000; // never: isolate the age bound
    cfg.watchdog.maxPacketAge = 3000;
    cfg.watchdog.failFast = false;
    system::CmpSystem sys(cfg);
    sys.run(20000);

    ASSERT_TRUE(sys.watchdogProbe()->fired());
    EXPECT_NE(sys.watchdogProbe()->diagnosis().find("starvation"),
              std::string::npos);
}

TEST(Watchdog, QuietOnHealthyRun)
{
    noc::resetPacketIds();
    system::SystemConfig cfg = faultConfig("stt_write_ber=1e-3");
    cfg.watchdogEnabled = true;
    cfg.watchdog.stallCycles = 2000;
    cfg.watchdog.maxPacketAge = 5000;
    cfg.watchdog.failFast = false;
    system::CmpSystem sys(cfg);
    sys.warmup(1000);
    sys.run(10000);
    EXPECT_FALSE(sys.watchdogProbe()->fired());
    EXPECT_EQ(sys.validation()->violations().size(), 0u);
}

} // namespace
} // namespace stacknoc
