"""Fleet-observability test: boots stacknoc_serve with the HTTP front
end, lifecycle log and checkpoint cap enabled, drives a small campaign,
and pins the observability contracts end to end:

  * ``GET /metrics`` returns valid Prometheus text exposition with the
    full metric catalogue (>= 12 distinct series), counters that agree
    with the campaign just run, and a sane queue-wait histogram;
  * counters are monotonic across scrapes and cache accounting matches
    the ``status`` command's view;
  * ``GET /status`` and ``POST /run`` work over TCP, and POST results
    match the Unix-socket results byte for byte;
  * the --log-json lifecycle log is schema-versioned NDJSON covering
    every job, and tools/serve_trace.py converts it to a Chrome trace;
  * observability is observer-only: result payloads and stats digests
    are identical with every feature on vs all off (modulo documented
    volatile wall-clock members);
  * --ckpt-cap-bytes evicts least-recently-used checkpoints, counted in
    ckpt_evictions_total;
  * tools/perf_sentinel.py validates the live scrape and exits non-zero
    on a synthetically degraded throughput baseline.

Same conventions as test_server_smoke.py: pytest-style, no pytest
dependency; ctest invokes ``python3 tests/test_server_metrics.py SERVE
CLIENT``.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

SERVE = os.environ.get("STACKNOC_SERVE", "")
CLIENT = os.environ.get("STACKNOC_CLIENT", "")

TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     os.pardir, "tools")

BASE = ["--scenario", "MRAM-4TSB-WB", "--seed", "1",
        "--warmup", "500", "--mesh", "8x8", "--apps", "tpcc"]
JOB = [*BASE, "--cycles", "2000"]

# Wall-clock members of the result data payload, documented volatile in
# docs/SERVER.md: everything else must be identical run to run.
VOLATILE = {"wall_seconds", "ticks_per_sec", "active_fraction"}


class Server:
    """stacknoc_serve with observability on (unless flags say off)."""

    def __init__(self, http=True, log=True, ckpt_cap=0, workers=1):
        self.dir = tempfile.mkdtemp(prefix="stacknoc_obs_")
        self.socket = os.path.join(self.dir, "serve.sock")
        self.log_path = os.path.join(self.dir, "events.ndjson")
        argv = [SERVE, "--socket", self.socket,
                "--workers", str(workers),
                "--ckpt-dir", os.path.join(self.dir, "ckpt")]
        if http:
            argv += ["--http", "0"]
        if log:
            argv += ["--log-json", self.log_path]
        if ckpt_cap:
            argv += ["--ckpt-cap-bytes", str(ckpt_cap)]
        self.proc = subprocess.Popen(argv, stdout=subprocess.DEVNULL,
                                     stderr=subprocess.PIPE, text=True)
        self.port = None
        stderr_lines = []
        deadline = time.time() + 10
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"server died: {''.join(stderr_lines)}"
                    f"{self.proc.stderr.read()}")
            line = self.proc.stderr.readline()
            stderr_lines.append(line)
            m = re.search(r"http on port (\d+)", line)
            if m:
                self.port = int(m.group(1))
            if os.path.exists(self.socket) and (self.port or not http):
                break
        else:
            raise AssertionError(
                f"server never came up: {''.join(stderr_lines)}")

    def client(self, *args, expect_rc=0):
        proc = subprocess.run([CLIENT, "--socket", self.socket, *args],
                              capture_output=True, text=True,
                              timeout=240)
        assert proc.returncode == expect_rc, \
            (f"client {' '.join(args)} exited {proc.returncode} "
             f"(want {expect_rc}):\n{proc.stdout}\n{proc.stderr}")
        return [json.loads(line) for line in
                proc.stdout.splitlines() if line.strip()]

    def http_get(self, path):
        with urllib.request.urlopen(
                f"http://127.0.0.1:{self.port}{path}",
                timeout=60) as resp:
            return resp.status, resp.headers, resp.read().decode()

    def http_post(self, path, body):
        req = urllib.request.Request(
            f"http://127.0.0.1:{self.port}{path}",
            data=json.dumps(body).encode(), method="POST")
        with urllib.request.urlopen(req, timeout=240) as resp:
            return resp.status, json.loads(resp.read().decode())

    def scrape(self):
        status, headers, text = self.http_get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"), headers["Content-Type"]
        series = {}
        for line in text.splitlines():
            if line.startswith("#") or not line.strip():
                continue
            key, value = line.rsplit(None, 1)
            series[key] = float(value)
        return text, series

    def shutdown(self):
        try:
            if self.proc.poll() is None:
                self.client("shutdown")
                self.proc.wait(timeout=30)
        finally:
            if self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait()
            shutil.rmtree(self.dir, ignore_errors=True)


def events_of(events, kind):
    return [e for e in events if e.get("event") == kind]


def result_data(events):
    results = events_of(events, "result")
    assert len(results) == 1, events
    return results[0]["data"]


def stable(data):
    return {k: v for k, v in data.items() if k not in VOLATILE}


def sentinel(*args):
    return subprocess.run(
        [sys.executable, os.path.join(TOOLS, "perf_sentinel.py"),
         *args], capture_output=True, text=True, timeout=120)


def test_metrics_campaign():
    """3-job campaign: scrape validity, monotonicity, status parity."""
    srv = Server()
    try:
        _, series0 = srv.scrape()
        assert len(series0) >= 12, \
            f"only {len(series0)} series on the empty scrape"
        assert series0["stacknoc_jobs_submitted_total"] == 0

        srv.client("run", *JOB)                          # miss
        srv.client("run", *JOB)                          # hit
        srv.client("run", *BASE, "--cycles", "4000")     # miss + restore

        text, series = srv.scrape()
        assert series["stacknoc_jobs_submitted_total"] == 3
        assert series["stacknoc_jobs_completed_total"] == 2
        assert series["stacknoc_cache_hits_total"] == 1
        assert series["stacknoc_cache_misses_total"] == 2
        assert series["stacknoc_jobs_failed_total"] == 0
        assert series["stacknoc_ckpt_cold_warms_total"] == 1
        assert series["stacknoc_ckpt_restores_total"] == 1
        assert series["stacknoc_ckpt_saves_total"] == 1
        assert series["stacknoc_cache_entries"] == 2
        assert series["stacknoc_cache_bytes"] > 0
        assert series["stacknoc_ckpt_files"] == 1
        assert series["stacknoc_uptime_seconds"] > 0
        assert series['stacknoc_build_info{version="1.2",protocol="1"}'] \
            == 1

        # Queue-wait histogram sanity: one sample per dispatched job,
        # cumulative buckets, sum consistent with the +Inf count.
        assert series["stacknoc_queue_wait_us_count"] == 2
        inf = series['stacknoc_queue_wait_us_bucket{le="+Inf"}']
        assert inf == 2
        cum = [v for k, v in sorted(series.items())
               if k.startswith('stacknoc_queue_wait_us_bucket')]
        assert all(v <= inf for v in cum)
        # Per-phase histograms sampled once per completed job.
        assert series[
            'stacknoc_job_phase_us_count{phase="measure"}'] == 2
        assert series[
            'stacknoc_job_phase_us_count{phase="total"}'] == 2

        # Monotonicity vs the first scrape.
        for key, v0 in series0.items():
            if key.endswith("_total") or "_bucket" in key or \
                    key.endswith("_count") or key.endswith("_sum"):
                assert series.get(key, 0) >= v0, key

        # Cache parity with the status command.
        status = events_of(srv.client("status"), "status")[0]
        assert status["cache_hits"] == \
            series["stacknoc_cache_hits_total"]
        assert status["cache_entries"] == \
            series["stacknoc_cache_entries"]
        assert status["completed"] == \
            series["stacknoc_jobs_completed_total"]
        # Extended status members.
        assert status["version"] == "1.2"
        assert status["uptime_sec"] > 0
        assert status["jobs_failed"] == 0
        assert status["worker_respawns"] == 0

        # The sentinel validates the live scrape.
        scrape_path = os.path.join(srv.dir, "scrape.prom")
        with open(scrape_path, "w", encoding="utf-8") as f:
            f.write(text)
        proc = sentinel("--check-format", scrape_path,
                        "--min-series", "12", "--metrics", scrape_path,
                        "--max-queue-wait-p95-us", "60000000",
                        "--min-cache-hit-rate", "0.3")
        assert proc.returncode == 0, proc.stdout + proc.stderr
    finally:
        srv.shutdown()


def test_http_run_and_errors():
    srv = Server()
    try:
        status, result = srv.http_post(
            "/run", {"scenario": "MRAM-4TSB-WB", "seed": 1,
                     "warmup": 500, "cycles": 2000, "apps": ["tpcc"]})
        assert status == 200
        assert result["event"] == "result"
        http_data = result["data"]

        # Same job over the socket is a cache hit with the same bytes.
        sock = result_data(srv.client("run", *JOB))
        assert sock == http_data

        status, _, body = srv.http_get("/status")
        assert status == 200
        doc = json.loads(body)
        assert doc["completed"] == 1 and doc["cache_hits"] == 1

        # Bad request -> 400, unknown path -> 404, bad method -> 405.
        try:
            srv.http_post("/run", {"scenario": "NOPE"})
            raise AssertionError("bad scenario was accepted")
        except urllib.error.HTTPError as e:
            assert e.code == 400
        try:
            srv.http_get("/nope")
            raise AssertionError("unknown path was served")
        except urllib.error.HTTPError as e:
            assert e.code == 404
        try:
            srv.http_post("/metrics", {})
            raise AssertionError("POST /metrics was served")
        except urllib.error.HTTPError as e:
            assert e.code == 405
    finally:
        srv.shutdown()


def test_event_log_and_trace():
    srv = Server()
    try:
        srv.client("run", *JOB)
        srv.client("run", *JOB)
        srv.client("run", "--scenario", "NOPE", expect_rc=1)

        kinds = []
        with open(srv.log_path, encoding="utf-8") as f:
            last_mono = -1
            for line in f:
                ev = json.loads(line)
                assert ev["v"] == 1, ev
                assert isinstance(ev["ts_ms"], int)
                assert ev["mono_us"] >= last_mono
                last_mono = ev["mono_us"]
                kinds.append(ev["event"])
        for want in ("server_start", "worker_spawned", "job_submitted",
                     "job_dispatched", "job_completed",
                     "job_served_cached"):
            assert want in kinds, f"no {want} event: {kinds}"

        completed = None
        with open(srv.log_path, encoding="utf-8") as f:
            for line in f:
                ev = json.loads(line)
                if ev["event"] == "job_completed":
                    completed = ev
        assert completed["worker_pid"] > 0
        assert completed["measure_us"] > 0
        assert completed["warm"] == "cold"
        assert re.fullmatch(r"0x[0-9a-f]{16}", completed["key"])
        assert re.fullmatch(r"0x[0-9a-f]{16}",
                            completed["stats_digest"])

        # The Chrome-trace exporter accepts the log and emits the
        # fleet pid rows.
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "serve_trace.py"),
             srv.log_path], capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        trace = json.loads(proc.stdout)["traceEvents"]
        assert all(e["pid"] == 3 for e in trace)
        names = [e["name"] for e in trace if e["ph"] == "X"]
        assert "job 1" in names and "measure" in names, names
    finally:
        srv.shutdown()


def test_observability_is_observer_only():
    """Payloads and digests match with every feature on vs all off."""
    plain = Server(http=False, log=False)
    try:
        base = result_data(plain.client("run", *JOB))
    finally:
        plain.shutdown()

    full = Server(http=True, log=True, ckpt_cap=1 << 30)
    try:
        data = result_data(full.client("run", *JOB))
        assert stable(data) == stable(base), \
            "observability changed the result payload"
        assert data["stats_digest"] == base["stats_digest"]
    finally:
        full.shutdown()


def test_ckpt_eviction():
    # Measure one checkpoint's size, then cap below 2x so a second warm
    # key evicts the first (LRU) while the newest survives.
    srv = Server()
    try:
        srv.client("run", *JOB)
        _, series = srv.scrape()
        one = int(series["stacknoc_ckpt_bytes"])
        assert one > 0
    finally:
        srv.shutdown()

    srv = Server(ckpt_cap=int(one * 1.5))
    try:
        srv.client("run", *JOB)
        srv.client("run", *JOB, "--seed", "2")  # different warm key
        _, series = srv.scrape()
        assert series["stacknoc_ckpt_evictions_total"] == 1, series
        assert series["stacknoc_ckpt_files"] == 1
        assert series["stacknoc_ckpt_bytes"] <= one * 1.5
        evicted = [json.loads(line)
                   for line in open(srv.log_path, encoding="utf-8")
                   if '"ckpt_evicted"' in line]
        assert len(evicted) == 1 and evicted[0]["bytes"] > 0
    finally:
        srv.shutdown()


def test_client_watch_and_error_exit():
    srv = Server(http=False, log=False)
    try:
        # status --watch prints one summary line per poll.
        proc = subprocess.Popen(
            [CLIENT, "--socket", srv.socket, "status",
             "--watch", "0.1"],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True)
        lines = [proc.stdout.readline() for _ in range(2)]
        proc.kill()
        proc.wait()
        for line in lines:
            assert re.search(r"up \d+\.\ds v1\.2 \| workers 1", line), \
                lines

        # Any error event exits non-zero (audited in
        # tools/stacknoc_client.cpp: the event loop returns 1 on
        # kind == "error" for every subcommand).
        bad = srv.client("run", "--fault-spec", "not-a-spec",
                         expect_rc=1)
        assert events_of(bad, "error"), bad
    finally:
        srv.shutdown()


def test_sentinel_baseline_diff():
    repo = os.path.join(TOOLS, os.pardir)
    baseline = os.path.join(repo, "BENCH_throughput.json")
    assert os.path.exists(baseline)

    # Committed baseline vs itself: clean pass.
    proc = sentinel("--baseline", baseline, "--fresh", baseline)
    assert proc.returncode == 0, proc.stdout + proc.stderr

    # Synthetically degraded throughput: non-zero exit.
    with open(baseline, encoding="utf-8") as f:
        doc = json.load(f)
    for run in doc.get("runs", []):
        if "ticks_per_sec" in run:
            run["ticks_per_sec"] *= 0.5
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump(doc, f)
        degraded = f.name
    try:
        proc = sentinel("--baseline", baseline, "--fresh", degraded)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert "ticks/sec" in proc.stdout
        # A broken stats digest is a hard failure too.
        doc["runs"][0]["ticks_per_sec"] = 10**9
        doc["runs"][0]["stats_digest"] = "0xdeadbeefdeadbeef"
        with open(degraded, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        proc = sentinel("--baseline", baseline, "--fresh", degraded)
        assert proc.returncode == 1
        assert "determinism" in proc.stdout
    finally:
        os.unlink(degraded)


def main():
    global SERVE, CLIENT
    if len(sys.argv) > 2:
        SERVE, CLIENT = sys.argv[1], sys.argv[2]
    for binary in (SERVE, CLIENT):
        assert binary and os.path.exists(binary), \
            "pass the stacknoc_serve and stacknoc_client paths"
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
