/**
 * @file
 * End-to-end integration tests: full CmpSystem runs across the design
 * scenarios, checking forward progress, protocol sanity, and the
 * expected qualitative orderings.
 */

#include <gtest/gtest.h>

#include "system/cmp_system.hh"
#include "workload/app_profiles.hh"

namespace stacknoc {
namespace {

using system::CmpSystem;
using system::SystemConfig;

SystemConfig
smallConfig(system::Scenario sc, const std::string &app = "tpcc")
{
    SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = std::move(sc);
    cfg.apps = {app};
    cfg.seed = 7;
    return cfg;
}

TEST(Integration, SmallSystemMakesProgressAllScenarios)
{
    for (const auto &sc : system::scenarios::figureSix()) {
        CmpSystem sys(smallConfig(sc));
        sys.warmup(2000);
        sys.run(5000);
        const auto m = sys.metrics();
        EXPECT_EQ(m.cycles, 5000u);
        for (int c = 0; c < sys.numCores(); ++c) {
            EXPECT_GT(m.ipc[static_cast<std::size_t>(c)], 0.05)
                << sc.name << " core " << c;
            EXPECT_LE(m.ipc[static_cast<std::size_t>(c)], 2.0);
        }
    }
}

TEST(Integration, WriteBufferScenarioMakesProgress)
{
    CmpSystem sys(smallConfig(system::scenarios::sttramBuff20()));
    sys.warmup(2000);
    sys.run(5000);
    EXPECT_GT(sys.metrics().meanIpc(), 0.05);
    EXPECT_GT(sys.cacheStats().counter("write_buffer_hits").value() +
                  sys.cacheStats().counter("bank_requests_served").value(),
              0u);
}

TEST(Integration, RealTagsModeMakesProgress)
{
    auto cfg = smallConfig(system::scenarios::sttram4TsbWb());
    cfg.realTags = true;
    CmpSystem sys(cfg);
    sys.warmup(2000);
    sys.run(5000);
    EXPECT_GT(sys.metrics().meanIpc(), 0.05);
    EXPECT_GT(sys.cacheStats().counter("l2_misses").value(), 0u);
}

TEST(Integration, CoherenceTrafficFlowsForSharedWorkloads)
{
    auto cfg = smallConfig(system::scenarios::sttram64Tsb(),
                           "streamcluster");
    cfg.stream.shareProb = 0.4;
    CmpSystem sys(cfg);
    sys.run(12000);
    // Sharing plus stores must exercise the directory: invalidations or
    // recalls must have happened.
    const auto invs = sys.cacheStats().counter("l2_invs_sent").value();
    const auto recalls =
        sys.cacheStats().counter("l2_recalls_sent").value();
    EXPECT_GT(invs + recalls, 0u);
    EXPECT_GT(sys.cacheStats().counter("l1_invs_received").value() +
                  sys.cacheStats().counter("l1_recalls_received").value(),
              0u);
}

TEST(Integration, MemoryTrafficReachesControllers)
{
    CmpSystem sys(smallConfig(system::scenarios::sttram64Tsb(), "mcf"));
    sys.run(10000);
    EXPECT_GT(sys.memStats().counter("dram_reads").value(), 0u);
}

TEST(Integration, BankAwareSchemeActuallyHoldsPackets)
{
    CmpSystem sys(smallConfig(system::scenarios::sttram4TsbWb(), "tpcc"));
    sys.run(15000);
    ASSERT_NE(sys.policy(), nullptr);
    EXPECT_GT(sys.policy()->stats().counter("busy_marks").value(), 0u);
    EXPECT_GT(sys.policy()->stats().counter("holds_started").value(), 0u);
}

TEST(Integration, DeterministicAcrossRuns)
{
    auto run_once = [] {
        CmpSystem sys(smallConfig(system::scenarios::sttram4TsbWb()));
        sys.run(8000);
        std::uint64_t total = 0;
        for (int c = 0; c < sys.numCores(); ++c)
            total += sys.core(c).committed();
        return total;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, FullSizeSystemShortRun)
{
    SystemConfig cfg;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.seed = 3;
    CmpSystem sys(cfg);
    EXPECT_EQ(sys.numCores(), 64);
    EXPECT_EQ(sys.numBanks(), 64);
    sys.run(4000);
    EXPECT_GT(sys.metrics().meanIpc(), 0.05);
    // The Figure-3 gap distribution is being collected.
    const auto *gap =
        sys.cacheStats().findDistribution("gap_after_write");
    ASSERT_NE(gap, nullptr);
    EXPECT_GT(gap->total(), 0u);
}

TEST(Integration, MpkiTracksTable3Targets)
{
    // The deficit-controlled generator must converge to the Table 3 L1
    // miss rate: check a bursty and a non-bursty app.
    for (const char *app : {"tpcc", "mcf"}) {
        SystemConfig cfg = smallConfig(system::scenarios::sttram64Tsb(),
                                       app);
        CmpSystem sys(cfg);
        sys.run(30000);
        const auto &profile = workload::findApp(app);
        const double committed = static_cast<double>(
            sys.coreStats().counter("instructions_committed").value());
        // Load misses plus no-allocate store writes = the Table 3
        // "L1 misses" (every one becomes an L2 access).
        const double misses = static_cast<double>(
            sys.cacheStats().counter("l1_misses").value() +
            sys.cacheStats().counter("l1_store_writes").value());
        const double mpki = 1000.0 * misses / committed;
        EXPECT_NEAR(mpki, profile.l1mpki, profile.l1mpki * 0.35)
            << app;
    }
}

TEST(Integration, ExtensionScenariosMakeProgress)
{
    for (const auto &sc : {system::scenarios::sttramReadPriority(),
                           system::scenarios::sttram4TsbWbReadPriority(),
                           system::scenarios::sttram4TsbWbPlus1Vc()}) {
        CmpSystem sys(smallConfig(sc));
        sys.warmup(2000);
        sys.run(5000);
        EXPECT_GT(sys.metrics().meanIpc(), 0.05) << sc.name;
    }
}

TEST(Integration, HoldModeMakesProgress)
{
    auto sc = system::scenarios::sttram4TsbWb();
    sc.delayMode = sttnoc::DelayMode::Hold;
    CmpSystem sys(smallConfig(sc));
    sys.warmup(2000);
    sys.run(6000);
    EXPECT_GT(sys.metrics().meanIpc(), 0.03);
}

TEST(Integration, DifferentSeedsGiveDifferentButSaneResults)
{
    auto run_seed = [](std::uint64_t seed) {
        auto cfg = smallConfig(system::scenarios::sttram4TsbWb());
        cfg.seed = seed;
        CmpSystem sys(cfg);
        sys.warmup(2000);
        sys.run(6000);
        return sys.metrics().meanIpc();
    };
    const double a = run_seed(1);
    const double b = run_seed(2);
    EXPECT_NE(a, b);
    EXPECT_NEAR(a, b, 0.25 * std::max(a, b)); // same workload, same shape
}

TEST(Integration, ReadLeaningAppsGainFromSttRamCapacity)
{
    // astar has a low L2 miss ratio (4.21 of 20.03 mpki), so the SRAM
    // configuration's doubled miss ratio costs it real DRAM trips and
    // the 4x STT-RAM capacity must win despite slower writes.
    auto ipc_of = [](system::Scenario sc) {
        CmpSystem sys(smallConfig(std::move(sc), "astar"));
        sys.warmup(2000);
        sys.run(8000);
        return sys.metrics().meanIpc();
    };
    const double sram = ipc_of(system::scenarios::sram64Tsb());
    const double mram = ipc_of(system::scenarios::sttram64Tsb());
    EXPECT_GT(mram, sram);
}

TEST(Integration, UncoreEnergyDropsWithSttRam)
{
    auto energy_of = [](system::Scenario sc) {
        CmpSystem sys(smallConfig(std::move(sc)));
        sys.warmup(1500);
        sys.run(5000);
        return sys.metrics().energy.totalUJ();
    };
    const double sram = energy_of(system::scenarios::sram64Tsb());
    const double mram = energy_of(system::scenarios::sttram4TsbWb());
    EXPECT_LT(mram, 0.75 * sram); // leakage dominates (paper: ~54%)
}

} // namespace
} // namespace stacknoc
