/**
 * @file
 * The cycle-accounting profiler: accumulation arithmetic, bounded span
 * retention, the disabled-profiler zero-retention fast path, the
 * phase-sum-tracks-wall-time contract on a real system (sequential and
 * sharded engines), and the observer-only guarantee (bit-identical
 * stats with the profiler on or off).
 */

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <sstream>
#include <string>

#include "noc/packet.hh"
#include "system/cmp_system.hh"
#include "telemetry/profile.hh"

using namespace stacknoc;
using telemetry::CycleProfiler;
using telemetry::EnginePhase;

namespace {

TEST(CycleProfiler, AccumulatesPhaseSeconds)
{
    CycleProfiler prof;
    prof.addPhase(EnginePhase::Compute, 0.0, 0.25);
    prof.addPhase(EnginePhase::Compute, 1.0, 1.25);
    prof.addPhase(EnginePhase::Barrier, 0.25, 1.0);
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(EnginePhase::Compute), 0.5);
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(EnginePhase::Barrier), 0.75);
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(EnginePhase::Commit), 0.0);
    EXPECT_DOUBLE_EQ(prof.totalPhaseSeconds(), 1.25);
}

TEST(CycleProfiler, ZeroCapacityRetainsNoSpans)
{
    // The totals-only mode used by plain --profile: addPhase must not
    // grow any span storage, no matter how many cycles run.
    CycleProfiler prof(0);
    for (int i = 0; i < 10000; ++i)
        prof.addPhase(EnginePhase::Compute, i, i + 0.5);
    EXPECT_EQ(prof.spansRecorded(), 0u);
    EXPECT_EQ(prof.spansDropped(), 0u);
    int visited = 0;
    prof.forEachSpan([&](std::uint32_t, const telemetry::PhaseSpan &) {
        ++visited;
    });
    EXPECT_EQ(visited, 0);
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(EnginePhase::Compute), 5000.0);
}

TEST(CycleProfiler, SpanCapacityBoundsRetention)
{
    CycleProfiler prof(4);
    for (int i = 0; i < 10; ++i)
        prof.addPhase(EnginePhase::Serial, i, i + 1.0);
    EXPECT_EQ(prof.spansRecorded(), 10u);
    EXPECT_EQ(prof.spansDropped(), 6u);
    int retained = 0;
    prof.forEachSpan([&](std::uint32_t tid,
                         const telemetry::PhaseSpan &span) {
        EXPECT_EQ(tid, 0u);
        EXPECT_EQ(span.phase, EnginePhase::Serial);
        ++retained;
    });
    EXPECT_EQ(retained, 4);
}

TEST(CycleProfiler, ShardSlotsAreIndependent)
{
    CycleProfiler prof(16);
    prof.setShardCount(3);
    prof.setShardCount(3); // idempotent
    prof.addShardPhase(0, EnginePhase::Compute, 0.0, 1.0);
    prof.addShardPhase(2, EnginePhase::Compute, 0.0, 0.5);
    EXPECT_DOUBLE_EQ(prof.shardSeconds(0, EnginePhase::Compute), 1.0);
    EXPECT_DOUBLE_EQ(prof.shardSeconds(1, EnginePhase::Compute), 0.0);
    EXPECT_DOUBLE_EQ(prof.shardSeconds(2, EnginePhase::Compute), 0.5);
    // Main-thread phases don't leak into shard slots or vice versa.
    EXPECT_DOUBLE_EQ(prof.phaseSeconds(EnginePhase::Compute), 0.0);
    int shard_spans = 0;
    prof.forEachSpan([&](std::uint32_t tid,
                         const telemetry::PhaseSpan &) {
        EXPECT_GE(tid, 1u);
        ++shard_spans;
    });
    EXPECT_EQ(shard_spans, 2);
}

TEST(CycleProfiler, KindAttribution)
{
    CycleProfiler prof;
    prof.setKinds({"router", "other"});
    prof.addKindSeconds(0, 0.125);
    prof.addKindSeconds(0, 0.125);
    prof.addKindSeconds(1, 1.0);
    ASSERT_EQ(prof.kindNames().size(), 2u);
    EXPECT_DOUBLE_EQ(prof.kindSeconds(0), 0.25);
    EXPECT_DOUBLE_EQ(prof.kindSeconds(1), 1.0);
}

TEST(CycleProfiler, PhaseNamesAreStable)
{
    EXPECT_STREQ(telemetry::enginePhaseName(EnginePhase::Compute),
                 "compute");
    EXPECT_STREQ(telemetry::enginePhaseName(EnginePhase::Barrier),
                 "barrier");
    EXPECT_STREQ(telemetry::enginePhaseName(EnginePhase::Commit),
                 "commit");
    EXPECT_STREQ(telemetry::enginePhaseName(EnginePhase::Serial),
                 "serial");
    EXPECT_STREQ(telemetry::enginePhaseName(EnginePhase::CycleEnd),
                 "cycle_end");
}

system::SystemConfig
smallConfig(int threads, bool profile)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.seed = 7;
    cfg.threads = threads;
    cfg.profile = profile;
    return cfg;
}

/**
 * The chained-timestamp contract: with the profiler on, per-cycle
 * phase durations tile the engine loop, so their sum must track the
 * externally measured wall time of run()/warmup(). The CI smoke
 * asserts 5% on a long run; here a short run tolerates a little more
 * loop overhead and scheduler noise.
 */
void
expectPhaseSumTracksWall(int threads)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallConfig(threads, true));
    sys.warmup(300);
    sys.run(2000);

    const auto *prof = sys.profiler();
    ASSERT_NE(prof, nullptr);
    EXPECT_EQ(prof->cycles(), 2300u);

    const double wall = sys.wallSeconds();
    const double phases = prof->totalPhaseSeconds();
    ASSERT_GT(wall, 0.0);
    ASSERT_GT(phases, 0.0);
    EXPECT_LE(phases, wall * 1.02);
    EXPECT_NEAR(phases, wall, wall * 0.10)
        << "phase sum " << phases << " vs wall " << wall;
}

TEST(ProfiledSystem, PhaseSumTracksWallSequential)
{
    expectPhaseSumTracksWall(1);
}

TEST(ProfiledSystem, PhaseSumTracksWallSharded)
{
    expectPhaseSumTracksWall(4);
}

TEST(ProfiledSystem, SequentialAttributesKinds)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallConfig(1, true));
    sys.run(500);
    const auto *prof = sys.profiler();
    ASSERT_NE(prof, nullptr);
    ASSERT_FALSE(prof->kindNames().empty());
    double kinds = 0.0;
    for (std::size_t k = 0; k < prof->kindNames().size(); ++k)
        kinds += prof->kindSeconds(k);
    // Kind attribution covers the compute phase (same stamps).
    EXPECT_GT(kinds, 0.0);
    EXPECT_NEAR(kinds, prof->phaseSeconds(EnginePhase::Compute),
                1e-9 + 0.01 * kinds);
}

TEST(ProfiledSystem, ShardedFillsShardSlots)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallConfig(4, true));
    sys.run(500);
    const auto *prof = sys.profiler();
    ASSERT_NE(prof, nullptr);
    ASSERT_GE(prof->numShards(), 2u);
    for (std::size_t s = 0; s < prof->numShards(); ++s)
        EXPECT_GT(prof->shardSeconds(s, EnginePhase::Compute), 0.0);
}

/** Bit-exact digest of every stat in @p g (doubles as raw bits). */
std::string
digest(const system::CmpSystem &sys)
{
    std::ostringstream os;
    for (const stats::Group *g :
         {&sys.cacheStats(), &sys.coreStats(), &sys.memStats(),
          &sys.network().stats()}) {
        for (const auto &[n, c] : g->allCounters())
            os << n << "=" << c.value() << "\n";
        for (const auto &[n, a] : g->allAverages()) {
            os << n << " "
               << std::bit_cast<std::uint64_t>(a.sum()) << " "
               << a.count() << "\n";
        }
    }
    return os.str();
}

TEST(ProfiledSystem, ProfilerIsObserverOnly)
{
    std::string with_profile;
    {
        noc::resetPacketIds();
        system::CmpSystem sys(smallConfig(2, true));
        sys.warmup(200);
        sys.run(800);
        with_profile = digest(sys);
    }
    std::string without_profile;
    {
        noc::resetPacketIds();
        system::CmpSystem sys(smallConfig(2, false));
        sys.warmup(200);
        sys.run(800);
        without_profile = digest(sys);
    }
    EXPECT_EQ(with_profile, without_profile);
}

TEST(ProfiledSystem, TableMentionsEveryPhase)
{
    noc::resetPacketIds();
    system::CmpSystem sys(smallConfig(2, true));
    sys.run(200);
    std::ostringstream os;
    sys.profiler()->writeTable(os, sys.wallSeconds());
    const std::string table = os.str();
    for (const char *phase :
         {"compute", "barrier", "commit", "serial", "cycle_end"})
        EXPECT_NE(table.find(phase), std::string::npos) << phase;
}

} // namespace
