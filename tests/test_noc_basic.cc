/**
 * @file
 * Unit tests for NoC building blocks: packet classes, topology wiring,
 * routing, and end-to-end single-packet timing through real routers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "noc/network.hh"
#include "noc/packet.hh"
#include "noc/params.hh"
#include "noc/routing.hh"
#include "noc/topology.hh"
#include "sim/simulator.hh"

namespace stacknoc {
namespace {

using noc::Dir;
using noc::PacketClass;

TEST(Packet, VnetMapping)
{
    EXPECT_EQ(noc::vnetOf(PacketClass::ReadReq), noc::kVnetReq);
    EXPECT_EQ(noc::vnetOf(PacketClass::WriteReq), noc::kVnetReq);
    EXPECT_EQ(noc::vnetOf(PacketClass::MemReq), noc::kVnetReq);
    EXPECT_EQ(noc::vnetOf(PacketClass::StoreWrite), noc::kVnetWb);
    EXPECT_EQ(noc::vnetOf(PacketClass::WritebackReq), noc::kVnetWb);
    EXPECT_EQ(noc::vnetOf(PacketClass::MemWrite), noc::kVnetWb);
    EXPECT_EQ(noc::vnetOf(PacketClass::DataResp), noc::kVnetResp);
    EXPECT_EQ(noc::vnetOf(PacketClass::Ack), noc::kVnetResp);
    EXPECT_EQ(noc::vnetOf(PacketClass::MemResp), noc::kVnetResp);
    EXPECT_EQ(noc::vnetOf(PacketClass::ProbeAck), noc::kVnetResp);
    EXPECT_EQ(noc::vnetOf(PacketClass::CohCtrl), noc::kVnetCoh);
    EXPECT_EQ(noc::vnetOf(PacketClass::CohData), noc::kVnetCoh);
}

TEST(Packet, FactorySizes)
{
    auto rd = noc::makePacket(PacketClass::ReadReq, 0, 1);
    EXPECT_EQ(rd->numFlits, 1);
    auto st = noc::makePacket(PacketClass::StoreWrite, 0, 1);
    EXPECT_EQ(st->numFlits, noc::kStoreWriteFlits);
    auto wb = noc::makePacket(PacketClass::WritebackReq, 0, 1);
    EXPECT_EQ(wb->numFlits, noc::kWritebackFlits);
    auto data = noc::makePacket(PacketClass::DataResp, 0, 1);
    EXPECT_EQ(data->numFlits, 9);
    auto coh = noc::makePacket(PacketClass::CohData, 0, 1);
    EXPECT_EQ(coh->numFlits, 9);
    EXPECT_NE(rd->id, wb->id);
}

TEST(Packet, RestrictedAndWriteClassification)
{
    EXPECT_TRUE(noc::isRestrictedRequest(PacketClass::ReadReq));
    EXPECT_TRUE(noc::isRestrictedRequest(PacketClass::WriteReq));
    EXPECT_TRUE(noc::isRestrictedRequest(PacketClass::StoreWrite));
    EXPECT_TRUE(noc::isRestrictedRequest(PacketClass::WritebackReq));
    EXPECT_FALSE(noc::isRestrictedRequest(PacketClass::DataResp));
    EXPECT_FALSE(noc::isRestrictedRequest(PacketClass::CohCtrl));
    EXPECT_FALSE(noc::isRestrictedRequest(PacketClass::MemReq));
    EXPECT_TRUE(noc::isLongBankWrite(PacketClass::StoreWrite));
    EXPECT_TRUE(noc::isLongBankWrite(PacketClass::WritebackReq));
    EXPECT_FALSE(noc::isLongBankWrite(PacketClass::ReadReq));
    EXPECT_FALSE(noc::isLongBankWrite(PacketClass::WriteReq));
}

TEST(Params, VnetLayout)
{
    // REQ=2, WB=2, RESP=1, COH=1: the paper's 6 VCs per port.
    noc::NocParams p;
    EXPECT_EQ(p.totalVcs(), 6);
    EXPECT_EQ(p.vnetBase(noc::kVnetReq), 0);
    EXPECT_EQ(p.vnetBase(noc::kVnetWb), 2);
    EXPECT_EQ(p.vnetBase(noc::kVnetResp), 4);
    EXPECT_EQ(p.vnetBase(noc::kVnetCoh), 5);
    EXPECT_EQ(p.vnetOfVc(0), noc::kVnetReq);
    EXPECT_EQ(p.vnetOfVc(2), noc::kVnetWb);
    EXPECT_EQ(p.vnetOfVc(4), noc::kVnetResp);
    EXPECT_EQ(p.vnetOfVc(5), noc::kVnetCoh);

    // The paper's "+1 VC" scenario adds one write-class VC.
    p.vcsPerVnet = {2, 3, 1, 1};
    EXPECT_EQ(p.totalVcs(), 7);
    EXPECT_EQ(p.vnetOfVc(4), noc::kVnetWb);
    EXPECT_EQ(p.vnetOfVc(5), noc::kVnetResp);
}

TEST(Topology, NeighborsAndOpposites)
{
    const MeshShape shape(8, 8, 2);
    noc::Topology topo(shape, 1, 1);
    EXPECT_EQ(topo.neighbor(0, Dir::East), 1);
    EXPECT_EQ(topo.neighbor(0, Dir::West), kInvalidNode);
    EXPECT_EQ(topo.neighbor(0, Dir::North), kInvalidNode);
    EXPECT_EQ(topo.neighbor(0, Dir::South), 8);
    EXPECT_EQ(topo.neighbor(0, Dir::Down), 64);
    EXPECT_EQ(topo.neighbor(64, Dir::Up), 0);
    EXPECT_EQ(topo.neighbor(64, Dir::Down), kInvalidNode);
    EXPECT_EQ(noc::opposite(Dir::East), Dir::West);
    EXPECT_EQ(noc::opposite(Dir::North), Dir::South);
    EXPECT_EQ(noc::opposite(Dir::Up), Dir::Down);
}

TEST(Topology, LinksExistExactlyWhereNeighborsAre)
{
    const MeshShape shape(4, 4, 2);
    noc::Topology topo(shape, 1, 1);
    for (NodeId n = 0; n < shape.totalNodes(); ++n) {
        for (int d = 1; d < noc::kNumDirs; ++d) {
            const Dir dir = static_cast<Dir>(d);
            const bool has_neighbor = topo.neighbor(n, dir) != kInvalidNode;
            EXPECT_EQ(topo.linkOut(n, dir) != nullptr, has_neighbor)
                << "node " << n << " dir " << d;
        }
    }
}

TEST(Topology, WidenDownLink)
{
    const MeshShape shape(4, 4, 2);
    noc::Topology topo(shape, 1, 1);
    EXPECT_EQ(topo.linkOut(5, Dir::Down)->bandwidth, 1);
    topo.widenDownLink(5, 2);
    EXPECT_EQ(topo.linkOut(5, Dir::Down)->bandwidth, 2);
}

TEST(ZxyRouting, PaperExample)
{
    // Core 63 -> cache 0 with Z-X-Y: down to 127, X to 120, Y to 64.
    const MeshShape shape(8, 8, 2);
    noc::ZxyRouting routing(shape);
    noc::Topology topo(shape, 1, 1);
    auto pkt = noc::makePacket(PacketClass::ReadReq, 63, 64);
    NodeId here = 63;
    std::vector<NodeId> path{here};
    while (here != pkt->dest) {
        here = topo.neighbor(here, routing.route(here, *pkt));
        path.push_back(here);
    }
    ASSERT_GE(path.size(), 3u);
    EXPECT_EQ(path[1], 127); // vertical first
    EXPECT_EQ(path[8], 120); // then X across the row
    EXPECT_EQ(path.back(), 64);
    EXPECT_EQ(static_cast<int>(path.size()) - 1,
              shape.hopDistance(63, 64));
}

TEST(ZxyRouting, AllPairsTerminateMinimally)
{
    const MeshShape shape(8, 8, 2);
    noc::ZxyRouting routing(shape);
    noc::Topology topo(shape, 1, 1);
    for (NodeId s = 0; s < shape.totalNodes(); ++s) {
        for (NodeId d = 0; d < shape.totalNodes(); ++d) {
            auto pkt = noc::makePacket(PacketClass::ReadReq, s, d);
            EXPECT_EQ(routing.pathLength(s, *pkt, topo),
                      shape.hopDistance(s, d));
        }
    }
}

/** Records every delivered packet with its delivery cycle. */
class SinkClient : public noc::NetworkClient
{
  public:
    void
    deliver(noc::PacketPtr pkt, Cycle now) override
    {
        received.emplace_back(std::move(pkt), now);
    }

    std::vector<std::pair<noc::PacketPtr, Cycle>> received;
};

/** A ready-to-run small network with a sink on every node. */
struct NetFixture
{
    explicit NetFixture(int w = 4, int h = 4)
        : shape(w, h, 2),
          net(sim, shape, noc::NocParams{},
              std::make_unique<noc::ZxyRouting>(shape), policy)
    {
        sinks.resize(static_cast<std::size_t>(shape.totalNodes()));
        for (NodeId n = 0; n < shape.totalNodes(); ++n)
            net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);
    }

    Simulator sim;
    MeshShape shape;
    noc::ArbitrationPolicy policy;
    noc::Network net;
    std::vector<SinkClient> sinks;
};

TEST(NetworkTiming, SingleFlitLatencyIsThreePlusThreePerHop)
{
    // NI injection (1) + 2 router stages + per-hop 3 cycles.
    for (const auto &[src, dst] : std::vector<std::pair<NodeId, NodeId>>{
             {0, 0}, {0, 1}, {0, 3}, {0, 16}, {5, 21}, {0, 31}}) {
        NetFixture f;
        auto pkt = noc::makePacket(PacketClass::ReadReq, src, dst);
        f.net.ni(src).send(pkt, 0);
        f.sim.run(200);
        auto &sink = f.sinks[static_cast<std::size_t>(dst)];
        ASSERT_EQ(sink.received.size(), 1u);
        const Cycle expected =
            3 + 3 * static_cast<Cycle>(f.shape.hopDistance(src, dst));
        EXPECT_EQ(sink.received[0].second, expected)
            << src << "->" << dst;
        EXPECT_EQ(pkt->ejectedAt, expected);
        EXPECT_EQ(pkt->injectedAt, 0u);
    }
}

TEST(NetworkTiming, DataPacketAddsSerializationLatency)
{
    NetFixture f;
    auto pkt = noc::makePacket(PacketClass::DataResp, 0, 1);
    ASSERT_EQ(pkt->numFlits, 9);
    f.net.ni(0).send(pkt, 0);
    f.sim.run(200);
    auto &sink = f.sinks[1];
    ASSERT_EQ(sink.received.size(), 1u);
    // Head takes 3 + 3 hops; the 8 body flits pipeline behind at 1/cycle.
    const Cycle expected = 3 + 3 * 1 + 8;
    EXPECT_EQ(sink.received[0].second, expected);
}

TEST(Network, SameVnetSameSrcDstOrderPreserved)
{
    NetFixture f;
    for (int i = 0; i < 10; ++i)
        f.net.ni(2).send(noc::makePacket(PacketClass::ReadReq, 2, 9), 0);
    f.sim.run(500);
    auto &sink = f.sinks[9];
    ASSERT_EQ(sink.received.size(), 10u);
    // Single-VC-at-a-time serialisation cannot reorder same-pair traffic
    // when queue order assigns VCs; verify arrival cycle monotonicity.
    for (std::size_t i = 1; i < sink.received.size(); ++i)
        EXPECT_GE(sink.received[i].second, sink.received[i - 1].second);
}

TEST(Network, DrainsCompletely)
{
    NetFixture f;
    for (NodeId n = 0; n < f.shape.totalNodes(); ++n) {
        f.net.ni(n).send(
            noc::makePacket(PacketClass::DataResp, n,
                            (n + 13) % f.shape.totalNodes()), 0);
    }
    f.sim.run(2000);
    EXPECT_EQ(f.net.totalBufferedFlits(), 0);
    EXPECT_EQ(f.net.stats().counter("packets_injected").value(), 32u);
    EXPECT_EQ(f.net.stats().counter("packets_ejected").value(), 32u);
}

/**
 * Routes all core-layer traffic through a single funnel node before
 * descending — a miniature of the region-TSB path restriction, used to
 * exercise the wide vertical link.
 */
class FunnelRouting : public noc::RoutingFunction
{
  public:
    FunnelRouting(const MeshShape &shape, NodeId funnel)
        : shape_(shape), funnel_(funnel)
    {}

    Dir
    route(NodeId here, const noc::Packet &pkt) const override
    {
        const Coord c = shape_.coord(here);
        const Coord d = shape_.coord(pkt.dest);
        if (c.layer == 0 && d.layer == 1) {
            if (here == funnel_)
                return Dir::Down;
            return noc::ZxyRouting::xyStep(c, shape_.coord(funnel_));
        }
        if (c.layer != d.layer)
            return c.layer < d.layer ? Dir::Down : Dir::Up;
        return noc::ZxyRouting::xyStep(c, d);
    }

  private:
    MeshShape shape_;
    NodeId funnel_;
};

TEST(Network, TsbDoubleBandwidthSpeedsUpVerticalBurst)
{
    // Funnel traffic from several cores through node 5's vertical link;
    // widening that link to two flits per cycle must cut the finish time.
    auto run_with_bw = [](int bw) {
        Simulator sim;
        const MeshShape shape(4, 4, 2);
        noc::ArbitrationPolicy policy;
        noc::Network net(sim, shape, noc::NocParams{},
                         std::make_unique<FunnelRouting>(shape, 5), policy);
        std::vector<SinkClient> sinks(
            static_cast<std::size_t>(shape.totalNodes()));
        for (NodeId n = 0; n < shape.totalNodes(); ++n)
            net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);
        net.topology().widenDownLink(5, bw);

        // Four sources, distinct cache destinations, 30 two-flit
        // writebacks each (write class: two VCs, so two packets can be
        // in flight on the wide link): the vertical link is the shared
        // bottleneck.
        const std::vector<NodeId> sources{4, 6, 1, 9};
        const std::vector<NodeId> dests{16, 19, 28, 31};
        for (int i = 0; i < 30; ++i) {
            for (std::size_t s = 0; s < sources.size(); ++s) {
                net.ni(sources[s]).send(
                    noc::makePacket(PacketClass::WritebackReq, sources[s],
                                    dests[s]), 0);
            }
        }
        sim.run(4000);
        Cycle last = 0;
        std::size_t total = 0;
        for (auto &sink : sinks) {
            total += sink.received.size();
            for (auto &[p, c] : sink.received)
                last = std::max(last, c);
        }
        EXPECT_EQ(total, 120u);
        return last;
    };
    const Cycle narrow = run_with_bw(1);
    const Cycle wide = run_with_bw(2);
    EXPECT_LT(wide, narrow);
}

} // namespace
} // namespace stacknoc
