"""Campaign-server smoke test: boots stacknoc_serve on a temp Unix
socket, drives it with stacknoc_client, and pins the subsystem's three
contracts end to end:

  * a "run" submission streams accepted -> interval* -> result events;
  * resubmitting the identical request is a cache hit served without
    re-simulation, with a byte-identical data payload;
  * the server-side stats digest matches a direct ``stacknoc_run
    --digest`` of the same configuration, and a second job sharing the
    warm configuration restores the warm checkpoint instead of warming
    up again.

Written pytest-style (plain asserts, test_* functions) but with no
pytest dependency: ``python3 tests/test_server_smoke.py SERVE CLIENT
RUN`` runs every test function, which is how ctest invokes it.
"""

import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time

SERVE = os.environ.get("STACKNOC_SERVE", "")
CLIENT = os.environ.get("STACKNOC_CLIENT", "")
RUN = os.environ.get("STACKNOC_RUN", "")

BASE = ["--scenario", "MRAM-4TSB-WB", "--seed", "1",
        "--warmup", "500", "--mesh", "8x8"]
JOB = [*BASE, "--apps", "tpcc", "--cycles", "2000"]


class Server:
    """stacknoc_serve on a fresh socket + checkpoint dir."""

    def __init__(self):
        self.dir = tempfile.mkdtemp(prefix="stacknoc_smoke_")
        self.socket = os.path.join(self.dir, "serve.sock")
        self.proc = subprocess.Popen(
            [SERVE, "--socket", self.socket, "--workers", "1",
             "--ckpt-dir", os.path.join(self.dir, "ckpt")],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
            text=True)
        for _ in range(100):
            if os.path.exists(self.socket):
                break
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"server died: {self.proc.stderr.read()}")
            time.sleep(0.05)
        else:
            raise AssertionError("server socket never appeared")

    def client(self, *args, expect_rc=0):
        proc = subprocess.run([CLIENT, "--socket", self.socket, *args],
                              capture_output=True, text=True,
                              timeout=240)
        assert proc.returncode == expect_rc, \
            (f"client {' '.join(args)} exited {proc.returncode} "
             f"(want {expect_rc}):\n{proc.stdout}\n{proc.stderr}")
        return [json.loads(line) for line in
                proc.stdout.splitlines() if line.strip()]

    def shutdown(self):
        try:
            if self.proc.poll() is None:
                self.client("shutdown")
                self.proc.wait(timeout=30)
        finally:
            if self.proc.poll() is None:
                self.proc.kill()
                self.proc.wait()
            shutil.rmtree(self.dir, ignore_errors=True)


def events_of(events, kind):
    return [e for e in events if e.get("event") == kind]


def direct_digest(cycles=2000):
    proc = subprocess.run([RUN, *BASE, "--app", "tpcc",
                           "--cycles", str(cycles), "--digest"],
                          capture_output=True, text=True, timeout=240)
    assert proc.returncode == 0, f"stacknoc_run failed:\n{proc.stderr}"
    m = re.search(r"stats_digest (0x[0-9a-f]{16})", proc.stdout)
    assert m, f"no stats_digest in:\n{proc.stdout}"
    return m.group(1)


def test_server_end_to_end():
    srv = Server()
    try:
        # Cold submission: miss, streamed intervals, fresh result.
        first = srv.client("run", *JOB, "--interval", "500")
        accepted = events_of(first, "accepted")
        assert accepted and accepted[0]["cache"] == "miss", first
        assert len(events_of(first, "interval")) >= 1, \
            f"no interval events streamed: {first}"
        results = events_of(first, "result")
        assert len(results) == 1 and results[0]["cached"] is False
        data = results[0]["data"]
        assert data["warm_saved"] is True
        assert data["warm_restored"] is False

        # Identical resubmission: hit, served from cache, same payload.
        second = srv.client("run", *JOB, "--interval", "500")
        accepted = events_of(second, "accepted")
        assert accepted and accepted[0]["cache"] == "hit", second
        cached = events_of(second, "result")
        assert len(cached) == 1 and cached[0]["cached"] is True
        assert cached[0]["data"] == data, \
            "cached payload differs from the original result"
        assert cached[0]["key"] == results[0]["key"]

        # The cached digest equals a direct stacknoc_run of the same
        # configuration: the cache returns what a re-run would compute.
        assert data["stats_digest"] == direct_digest()

        # A different measured length shares the warm configuration, so
        # it restores the checkpoint saved by the first job — and still
        # matches the direct uninterrupted run bit for bit.
        third = srv.client("run", *BASE, "--apps", "tpcc",
                           "--cycles", "4000")
        warm = events_of(third, "result")[0]["data"]
        assert warm["warm_restored"] is True, warm
        assert warm["restored_from_cycle"] == 500
        assert warm["stats_digest"] == direct_digest(cycles=4000)

        # Bookkeeping made it into status.
        status = events_of(srv.client("status"), "status")[0]
        assert status["completed"] == 2
        assert status["cache_hits"] == 1
        assert status["cache_entries"] == 2

        # Submission-time validation fails fast with exit 1.
        bad = srv.client("run", "--scenario", "NOPE", expect_rc=1)
        assert events_of(bad, "error"), bad
    finally:
        srv.shutdown()


def test_server_shutdown_is_clean():
    srv = Server()
    try:
        bye = srv.client("shutdown")
        assert events_of(bye, "bye"), bye
        srv.proc.wait(timeout=30)
        assert srv.proc.returncode == 0
    finally:
        srv.shutdown()


def main():
    global SERVE, CLIENT, RUN
    if len(sys.argv) > 3:
        SERVE, CLIENT, RUN = sys.argv[1], sys.argv[2], sys.argv[3]
    for binary in (SERVE, CLIENT, RUN):
        assert binary and os.path.exists(binary), \
            "pass the stacknoc_serve, stacknoc_client and stacknoc_run paths"
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
