/**
 * @file
 * ResultStore recovery contract: every corruption we can write to disk
 * — torn tails, flipped payload bytes, records from a future schema,
 * empty and unwritable journals — loads without failing the caller,
 * with the right records recovered and the right skip counters.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/result_store.hh"

namespace fs = std::filesystem;
using stacknoc::server::ResultStore;

namespace {

/** Fresh scratch dir per test, removed on teardown. */
class ResultStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("stacknoc_store_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
        fs::create_directories(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    fs::path wal() const { return dir_ / "results.wal"; }

    /** Open a store on dir_, collecting replayed records. */
    bool
    openCollect(ResultStore &store,
                std::vector<std::pair<std::uint64_t, std::string>> &out,
                std::string &err)
    {
        return store.open(
            dir_.string(),
            [&](std::uint64_t key, const std::string &payload) {
                out.emplace_back(key, payload);
            },
            err);
    }

    fs::path dir_;
};

/** Byte-level surgery helpers. */
std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const fs::path &p, const std::string &bytes)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Record layout constants mirrored from result_store.cc. */
constexpr std::size_t kHeader = 28;
constexpr std::size_t kVersionOff = 4;
constexpr std::size_t kPayloadOff = kHeader;

TEST_F(ResultStoreTest, RoundTripAcrossReopen)
{
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        EXPECT_TRUE(store.enabled());
        EXPECT_TRUE(store.append(1, "{\"a\":1}"));
        EXPECT_TRUE(store.append(2, "{\"b\":2}"));
        EXPECT_TRUE(store.append(3, std::string(1000, 'x')));
        EXPECT_EQ(store.stats().appends, 3u);
    }
    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].first, 1u);
    EXPECT_EQ(got[0].second, "{\"a\":1}");
    EXPECT_EQ(got[1].second, "{\"b\":2}");
    EXPECT_EQ(got[2].second, std::string(1000, 'x'));
    EXPECT_EQ(store.stats().recoveredRecords, 3u);
    EXPECT_EQ(store.stats().skippedRecords, 0u);
}

TEST_F(ResultStoreTest, DisabledWhenDirEmpty)
{
    ResultStore store;
    std::string err;
    ASSERT_TRUE(store.open("", nullptr, err));
    EXPECT_FALSE(store.enabled());
    EXPECT_FALSE(store.append(1, "payload"));
}

TEST_F(ResultStoreTest, EmptyJournalLoadsCleanly)
{
    writeFile(wal(), "");
    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(store.stats().recoveredRecords, 0u);
    EXPECT_EQ(store.stats().skippedRecords, 0u);
}

TEST_F(ResultStoreTest, TruncatedTailIsTrimmedAndAppendable)
{
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        ASSERT_TRUE(store.append(10, "{\"keep\":true}"));
        ASSERT_TRUE(store.append(11, "{\"torn\":true}"));
    }
    // Tear the second record mid-payload, as a crash mid-write would.
    const std::string bytes = readFile(wal());
    writeFile(wal(), bytes.substr(0, bytes.size() - 5));

    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    std::uint64_t firstLen = 0;
    {
        ResultStore store;
        ASSERT_TRUE(openCollect(store, got, err)) << err;
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0].first, 10u);
        EXPECT_EQ(store.stats().recoveredRecords, 1u);
        EXPECT_EQ(store.stats().skippedRecords, 1u);
        // The torn tail must be gone so appends extend a clean prefix.
        firstLen = kHeader + got[0].second.size();
        EXPECT_EQ(fs::file_size(wal()), firstLen);
        ASSERT_TRUE(store.append(12, "{\"after\":true}"));
    }
    got.clear();
    ResultStore store;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].first, 10u);
    EXPECT_EQ(got[1].first, 12u);
    EXPECT_EQ(store.stats().skippedRecords, 0u);
}

TEST_F(ResultStoreTest, BitFlippedPayloadSkipsOnlyThatRecord)
{
    std::string p1 = "{\"r\":1}", p2 = "{\"r\":2}", p3 = "{\"r\":3}";
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        ASSERT_TRUE(store.append(1, p1));
        ASSERT_TRUE(store.append(2, p2));
        ASSERT_TRUE(store.append(3, p3));
    }
    std::string bytes = readFile(wal());
    // Flip one payload byte of the middle record; the self-delimiting
    // header must let the reader re-sync on record 3.
    const std::size_t rec2Payload =
        (kHeader + p1.size()) + kPayloadOff + 2;
    bytes[rec2Payload] = static_cast<char>(bytes[rec2Payload] ^ 0xff);
    writeFile(wal(), bytes);

    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].first, 1u);
    EXPECT_EQ(got[1].first, 3u);
    EXPECT_EQ(got[1].second, p3);
    EXPECT_EQ(store.stats().recoveredRecords, 2u);
    EXPECT_EQ(store.stats().skippedRecords, 1u);
}

TEST_F(ResultStoreTest, UnknownFutureVersionSkipsAndContinues)
{
    std::string p1 = "{\"v\":1}", p2 = "{\"v\":2}";
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        ASSERT_TRUE(store.append(1, p1));
        ASSERT_TRUE(store.append(2, p2));
    }
    std::string bytes = readFile(wal());
    bytes[kVersionOff] = 99; // record 1 now claims schema version 99
    writeFile(wal(), bytes);

    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].first, 2u);
    EXPECT_EQ(store.stats().recoveredRecords, 1u);
    EXPECT_EQ(store.stats().skippedRecords, 1u);
}

TEST_F(ResultStoreTest, GarbageTailStopsScanWithoutCrashing)
{
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        ASSERT_TRUE(store.append(7, "{\"ok\":true}"));
    }
    std::string bytes = readFile(wal());
    bytes += std::string(64, '\xAB'); // not a record header
    writeFile(wal(), bytes);

    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(store.stats().skippedRecords, 1u);
}

TEST_F(ResultStoreTest, SealsIntoSegmentsAndReplaysInOrder)
{
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        store.setSegmentCapBytes(1); // force a roll every append
        for (std::uint64_t k = 1; k <= 5; ++k)
            ASSERT_TRUE(
                store.append(k, "{\"k\":" + std::to_string(k) + "}"));
        EXPECT_EQ(store.stats().segments, 5u);
    }
    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 5u);
    for (std::uint64_t k = 1; k <= 5; ++k)
        EXPECT_EQ(got[k - 1].first, k); // oldest segment first
    // Appends after a reopen land in a fresh journal, not a segment.
    ASSERT_TRUE(store.append(6, "{\"k\":6}"));
}

TEST_F(ResultStoreTest, DuplicateKeysReplayOldestFirst)
{
    {
        ResultStore store;
        std::string err;
        ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
        ASSERT_TRUE(store.append(42, "{\"first\":true}"));
        ASSERT_TRUE(store.append(42, "{\"second\":true}"));
    }
    ResultStore store;
    std::vector<std::pair<std::uint64_t, std::string>> got;
    std::string err;
    ASSERT_TRUE(openCollect(store, got, err)) << err;
    ASSERT_EQ(got.size(), 2u);
    // The server dedups with emplace, so first-wins requires the
    // store to replay in append order.
    std::map<std::uint64_t, std::string> cache;
    for (const auto &[k, v] : got)
        cache.emplace(k, v);
    EXPECT_EQ(cache[42], "{\"first\":true}");
}

TEST_F(ResultStoreTest, UnwritableJournalFailsOpenWithReason)
{
    fs::create_directories(wal()); // a directory where the wal goes
    ResultStore store;
    std::string err;
    EXPECT_FALSE(store.open(dir_.string(), nullptr, err));
    EXPECT_NE(err.find("result journal"), std::string::npos);
}

TEST_F(ResultStoreTest, DiskFullAppendIsCountedNotFatal)
{
    if (!fs::exists("/dev/full"))
        GTEST_SKIP() << "/dev/full not available";
    // results.wal -> /dev/full: opens writable, every flush ENOSPCs —
    // the canonical disk-full simulation.
    fs::create_symlink("/dev/full", wal());
    ResultStore store;
    std::string err;
    ASSERT_TRUE(store.open(dir_.string(), nullptr, err)) << err;
    EXPECT_FALSE(store.append(1, "{\"lost\":true}"));
    EXPECT_FALSE(store.append(2, "{\"lost\":true}"));
    EXPECT_EQ(store.stats().appendFailures, 2u);
    EXPECT_EQ(store.stats().appends, 0u);
}

} // namespace
