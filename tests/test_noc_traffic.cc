/**
 * @file
 * Property-style NoC tests under randomized and adversarial traffic:
 * conservation, drains, priority policies, and backpressure.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "noc/network.hh"
#include "noc/packet.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace stacknoc {
namespace {

using noc::PacketClass;

class CountingSink : public noc::NetworkClient
{
  public:
    void
    deliver(noc::PacketPtr pkt, Cycle now) override
    {
        ++count;
        lastCycle = now;
        minLatencyOk &= (now - pkt->createdAt) >=
            3 + 3 * static_cast<Cycle>(hops(pkt->src, pkt->dest));
    }

    static int
    hops(NodeId a, NodeId b)
    {
        const MeshShape shape(8, 8, 2);
        return shape.hopDistance(a, b);
    }

    std::uint64_t count = 0;
    Cycle lastCycle = 0;
    bool minLatencyOk = true;
};

struct RandomTrafficParam
{
    double injection_rate; //!< packets per node per cycle
    PacketClass cls;
};

class RandomTraffic : public ::testing::TestWithParam<RandomTrafficParam>
{
};

TEST_P(RandomTraffic, ConservationAndMinimumLatency)
{
    const auto param = GetParam();
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    Rng rng(1234);
    std::uint64_t sent = 0;
    const Cycle warm = 600;
    for (Cycle t = 0; t < warm; ++t) {
        for (NodeId n = 0; n < shape.totalNodes(); ++n) {
            if (rng.chance(param.injection_rate)) {
                NodeId dest = static_cast<NodeId>(
                    rng.below(static_cast<std::uint64_t>(
                        shape.totalNodes())));
                net.ni(n).send(noc::makePacket(param.cls, n, dest), t);
                ++sent;
            }
        }
        sim.step();
    }
    EXPECT_TRUE(testutil::runUntilDrained(sim, net, 30000));

    std::uint64_t received = 0;
    for (auto &s : sinks) {
        received += s.count;
        EXPECT_TRUE(s.minLatencyOk);
    }
    EXPECT_EQ(received, sent);
    EXPECT_EQ(net.totalBufferedFlits(), 0);
    EXPECT_EQ(net.stats().counter("packets_injected").value(), sent);
    EXPECT_EQ(net.stats().counter("packets_ejected").value(), sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Values(RandomTrafficParam{0.02, PacketClass::ReadReq},
                      RandomTrafficParam{0.05, PacketClass::ReadReq},
                      RandomTrafficParam{0.02, PacketClass::DataResp},
                      RandomTrafficParam{0.01, PacketClass::CohCtrl},
                      RandomTrafficParam{0.03, PacketClass::Ack}));

TEST(MixedTraffic, AllVnetsDrain)
{
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    const PacketClass classes[] = {
        PacketClass::ReadReq, PacketClass::WritebackReq,
        PacketClass::DataResp, PacketClass::CohCtrl, PacketClass::CohData,
        PacketClass::MemResp};
    Rng rng(99);
    std::uint64_t sent = 0;
    for (Cycle t = 0; t < 600; ++t) {
        for (NodeId n = 0; n < shape.totalNodes(); ++n) {
            if (rng.chance(0.02)) {
                const PacketClass cls = classes[rng.below(6)];
                NodeId dest = static_cast<NodeId>(rng.below(128));
                net.ni(n).send(noc::makePacket(cls, n, dest), t);
                ++sent;
            }
        }
        sim.step();
    }
    EXPECT_TRUE(testutil::runUntilDrained(sim, net, 40000));
    std::uint64_t received = 0;
    for (auto &s : sinks)
        received += s.count;
    EXPECT_EQ(received, sent);
    EXPECT_EQ(net.totalBufferedFlits(), 0);
}

TEST(HotspotTraffic, ManySourcesOneDestinationAllDelivered)
{
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    const NodeId hotspot = 91;
    std::uint64_t sent = 0;
    for (NodeId n = 0; n < 64; ++n) {
        for (int i = 0; i < 5; ++i) {
            net.ni(n).send(
                noc::makePacket(PacketClass::WritebackReq, n, hotspot), 0);
            ++sent;
        }
    }
    EXPECT_TRUE(testutil::runUntilDrained(sim, net, 80000));
    EXPECT_EQ(sinks[91].count, sent);
    EXPECT_EQ(net.totalBufferedFlits(), 0);
}

/**
 * A policy that freezes a given destination until a release cycle —
 * exercises the eligibility hook that the STT-RAM-aware scheme relies on.
 */
class FreezeDestPolicy : public noc::ArbitrationPolicy
{
  public:
    FreezeDestPolicy(NodeId dest, Cycle release)
        : dest_(dest), release_(release)
    {}

    bool
    eligible(NodeId, noc::Packet &pkt, Cycle now) override
    {
        return pkt.dest != dest_ || now >= release_;
    }

  private:
    NodeId dest_;
    Cycle release_;
};

TEST(PolicyHooks, IneligiblePacketsAreHeldUntilRelease)
{
    Simulator sim;
    const MeshShape shape(4, 4, 2);
    FreezeDestPolicy policy(16, 300);
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    std::vector<CountingSink> sinks(
        static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

    net.ni(0).send(noc::makePacket(PacketClass::ReadReq, 0, 16), 0);
    net.ni(1).send(noc::makePacket(PacketClass::ReadReq, 1, 17), 0);
    sim.run(100);
    EXPECT_EQ(sinks[16].count, 0u); // frozen at the first router
    EXPECT_EQ(sinks[17].count, 1u); // unaffected traffic flows
    sim.run(400);
    EXPECT_EQ(sinks[16].count, 1u); // released after cycle 300
    EXPECT_GE(sinks[16].lastCycle, 300u);
}

/**
 * A policy that gives one packet class strict priority — checks that the
 * priority path through VA/SA allocation is honoured under contention.
 */
class ClassPriorityPolicy : public noc::ArbitrationPolicy
{
  public:
    int
    priorityClass(NodeId, const noc::Packet &pkt, Cycle) override
    {
        return pkt.cls == PacketClass::CohCtrl ? 0 : 1;
    }
};

TEST(PolicyHooks, PrioritizedClassWinsUnderContention)
{
    auto mean_latency = [](bool prioritize) {
        Simulator sim;
        const MeshShape shape(8, 8, 2);
        noc::ArbitrationPolicy rr;
        ClassPriorityPolicy prio;
        noc::ArbitrationPolicy &policy =
            prioritize ? static_cast<noc::ArbitrationPolicy &>(prio) : rr;
        noc::Network net(sim, shape, noc::NocParams{},
                         std::make_unique<noc::ZxyRouting>(shape), policy);
        std::vector<CountingSink> sinks(
            static_cast<std::size_t>(shape.totalNodes()));
        for (NodeId n = 0; n < shape.totalNodes(); ++n)
            net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);

        // Background data traffic crossing the mesh plus probe CohCtrl
        // packets sharing the same column.
        Rng rng(5);
        double coh_lat_sum = 0;
        int coh_n = 0;
        std::vector<noc::PacketPtr> coh;
        for (Cycle t = 0; t < 900; ++t) {
            for (NodeId n = 0; n < 64; ++n) {
                if (rng.chance(0.04)) {
                    net.ni(n).send(noc::makePacket(
                        PacketClass::DataResp, n,
                        static_cast<NodeId>(64 + rng.below(64))), t);
                }
            }
            if (t % 50 == 0) {
                auto p = noc::makePacket(PacketClass::CohCtrl, 0, 120);
                coh.push_back(p);
                net.ni(0).send(p, t);
            }
            sim.step();
        }
        testutil::runUntilDrained(sim, net, 40000);
        for (auto &p : coh) {
            if (p->ejectedAt != kCycleNever) {
                coh_lat_sum +=
                    static_cast<double>(p->ejectedAt - p->createdAt);
                ++coh_n;
            }
        }
        EXPECT_GT(coh_n, 0);
        return coh_lat_sum / coh_n;
    };
    const double rr_latency = mean_latency(false);
    const double prio_latency = mean_latency(true);
    EXPECT_LE(prio_latency, rr_latency);
}

} // namespace
} // namespace stacknoc
