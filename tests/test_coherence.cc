/**
 * @file
 * Protocol unit tests: the L1 MESI requester FSM and the L2 blocking
 * home directory, driven message-by-message through a recording fake
 * packet sender (no network involved).
 */

#include <gtest/gtest.h>

#include <vector>

#include "coherence/l1_cache.hh"
#include "coherence/l2_bank.hh"

namespace stacknoc {
namespace {

using coherence::CohKind;
using coherence::Grant;
using coherence::HomeMap;
using coherence::kindOf;
using coherence::L1Cache;
using coherence::L1State;
using coherence::L2Bank;
using coherence::L2Config;
using noc::PacketClass;
using noc::PacketPtr;

/** Records every injected packet. */
class FakeSender : public noc::PacketSender
{
  public:
    void
    send(PacketPtr pkt, Cycle now) override
    {
        pkt->createdAt = now;
        sent.push_back(std::move(pkt));
    }

    /** @return the most recent packet of kind @p kind, or nullptr. */
    PacketPtr
    findLast(CohKind kind) const
    {
        for (auto it = sent.rbegin(); it != sent.rend(); ++it)
            if (kindOf(**it) == kind)
                return *it;
        return nullptr;
    }

    std::size_t
    countOf(CohKind kind) const
    {
        std::size_t n = 0;
        for (const auto &p : sent)
            n += kindOf(*p) == kind;
        return n;
    }

    std::vector<PacketPtr> sent;
};

// ---------------------------------------------------------------------
// L1 tests.
// ---------------------------------------------------------------------

struct L1Fixture
{
    L1Fixture() : group("cache"), l1("l1.0", 0, sender, HomeMap{}, cfg(),
                                     group)
    {}

    static coherence::L1Config
    cfg()
    {
        coherence::L1Config c;
        c.sets = 2;
        c.ways = 2;
        c.mshrs = 4;
        return c;
    }

    /** Deliver a Data grant for @p addr. */
    void
    grant(BlockAddr addr, Grant g, Cycle now)
    {
        auto data = noc::makePacket(PacketClass::DataResp, 64, 0, addr);
        setKind(*data, CohKind::Data, 0);
        data->info.aux = static_cast<std::uint16_t>(g);
        l1.deliver(std::move(data), now);
    }

    stats::Group group;
    FakeSender sender;
    L1Cache l1;
    int completions = 0;

    std::function<void(Cycle)>
    done()
    {
        return [this](Cycle) { ++completions; };
    }
};

TEST(L1, ReadMissSendsGetSAndCompletesOnData)
{
    L1Fixture f;
    EXPECT_TRUE(f.l1.access(false, 0x40, true, f.done(), 10));
    EXPECT_EQ(f.l1.state(0x40), L1State::IS);
    auto gets = f.sender.findLast(CohKind::GetS);
    ASSERT_NE(gets, nullptr);
    EXPECT_EQ(gets->cls, PacketClass::ReadReq);
    EXPECT_EQ(gets->dest, HomeMap{}.homeNode(0x40));
    EXPECT_EQ(gets->destBank, HomeMap{}.bankOf(0x40));
    EXPECT_TRUE(gets->info.flags & coherence::kFlagL2Hit);

    f.grant(0x40, Grant::S, 30);
    EXPECT_EQ(f.completions, 1);
    EXPECT_EQ(f.l1.state(0x40), L1State::S);
    EXPECT_EQ(f.l1.mshrsInUse(), 0);
}

TEST(L1, ExclusiveGrantAllowsSilentWriteUpgrade)
{
    L1Fixture f;
    EXPECT_TRUE(f.l1.access(false, 0x40, true, f.done(), 0));
    f.grant(0x40, Grant::E, 20);
    EXPECT_EQ(f.l1.state(0x40), L1State::E);
    // Store hit on E: no network traffic, straight to M.
    const auto traffic_before = f.sender.sent.size();
    EXPECT_TRUE(f.l1.access(true, 0x40, true, f.done(), 25));
    f.l1.tick(27); // hit completes after hitLatency
    EXPECT_EQ(f.completions, 2);
    EXPECT_EQ(f.l1.state(0x40), L1State::M);
    EXPECT_EQ(f.sender.sent.size(), traffic_before);
}

TEST(L1, StoreHitOnSharedUpgrades)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::S, 20);
    EXPECT_TRUE(f.l1.access(true, 0x40, true, f.done(), 25));
    EXPECT_EQ(f.l1.state(0x40), L1State::SM);
    auto getm = f.sender.findLast(CohKind::GetM);
    ASSERT_NE(getm, nullptr);
    // UpgradeAck completes the store with M.
    auto ack = noc::makePacket(PacketClass::Ack, 64, 0, 0x40);
    setKind(*ack, CohKind::UpgradeAck, 0);
    f.l1.deliver(std::move(ack), 40);
    EXPECT_EQ(f.completions, 2);
    EXPECT_EQ(f.l1.state(0x40), L1State::M);
}

TEST(L1, StoreMissIsFireAndForgetStoreWrite)
{
    L1Fixture f;
    EXPECT_TRUE(f.l1.access(true, 0x40, true, f.done(), 0));
    // Completes locally at hit latency without any MSHR.
    EXPECT_EQ(f.l1.mshrsInUse(), 0);
    f.l1.tick(2);
    EXPECT_EQ(f.completions, 1);
    auto st = f.sender.findLast(CohKind::WriteL2);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->cls, PacketClass::StoreWrite);
    EXPECT_EQ(st->numFlits, noc::kStoreWriteFlits);
    EXPECT_EQ(st->dest, HomeMap{}.homeNode(0x40));
    // No allocation: the block is still Invalid locally.
    EXPECT_EQ(f.l1.state(0x40), L1State::I);
}

/** Load a block, grant it Modified via a store hit on Exclusive. */
void
makeModified(L1Fixture &f, BlockAddr addr, Cycle t)
{
    ASSERT_TRUE(f.l1.access(false, addr, true, f.done(), t));
    f.grant(addr, Grant::E, t + 5);
    ASSERT_TRUE(f.l1.access(true, addr, true, f.done(), t + 6));
    f.l1.tick(t + 9);
    ASSERT_EQ(f.l1.state(addr), L1State::M);
}

TEST(L1, DirtyEvictionSendsPutMAndBlocksRefetchUntilWbAck)
{
    L1Fixture f;
    // Fill set 0 (2 ways) with Modified blocks 0x40 and 0x42 (set =
    // addr % 2 ... both even -> same set 0).
    makeModified(f, 0x40, 0);
    makeModified(f, 0x42, 20);
    // A third block in the same set evicts LRU 0x40 -> PutM.
    f.l1.access(false, 0x44, true, f.done(), 40);
    auto putm = f.sender.findLast(CohKind::PutM);
    ASSERT_NE(putm, nullptr);
    EXPECT_EQ(putm->addr, 0x40u);
    EXPECT_EQ(putm->cls, PacketClass::WritebackReq);
    EXPECT_EQ(putm->numFlits, noc::kWritebackFlits);
    // Re-fetching 0x40 is refused while its PutM is unacknowledged.
    EXPECT_FALSE(f.l1.access(false, 0x40, true, f.done(), 45));
    auto wback = noc::makePacket(PacketClass::Ack, 64, 0, 0x40);
    setKind(*wback, CohKind::WbAck, 0);
    f.l1.deliver(std::move(wback), 50);
    f.grant(0x44, Grant::E, 55); // release the MSHR/way first
    EXPECT_TRUE(f.l1.access(false, 0x40, true, f.done(), 60));
}

TEST(L1, CleanEvictionIsSilent)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::S, 10);
    f.l1.access(false, 0x42, true, f.done(), 20);
    f.grant(0x42, Grant::E, 30);
    const auto before = f.sender.countOf(CohKind::PutM);
    f.l1.access(false, 0x44, true, f.done(), 40); // evicts S or E block
    EXPECT_EQ(f.sender.countOf(CohKind::PutM), before);
}

TEST(L1, GrantTriggersUnblockToHome)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    EXPECT_EQ(f.sender.countOf(CohKind::Unblock), 0u);
    f.grant(0x40, Grant::E, 20);
    auto unblock = f.sender.findLast(CohKind::Unblock);
    ASSERT_NE(unblock, nullptr);
    EXPECT_EQ(unblock->dest, HomeMap{}.homeNode(0x40));
    EXPECT_EQ(unblock->addr, 0x40u);
    EXPECT_EQ(unblock->numFlits, 1);
}

TEST(L1, UpgradeAckAlsoUnblocks)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::S, 10);
    f.l1.access(true, 0x40, true, f.done(), 20); // SM upgrade
    auto ack = noc::makePacket(PacketClass::Ack, 64, 0, 0x40);
    setKind(*ack, CohKind::UpgradeAck, 0);
    f.l1.deliver(std::move(ack), 40);
    EXPECT_EQ(f.sender.countOf(CohKind::Unblock), 2u); // fill + upgrade
}

TEST(L1, InvalidationOfSharedBlock)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::S, 10);
    auto inv = noc::makePacket(PacketClass::CohCtrl, 64, 0, 0x40);
    setKind(*inv, CohKind::Inv, 0);
    f.l1.deliver(std::move(inv), 20);
    EXPECT_EQ(f.l1.state(0x40), L1State::I);
    EXPECT_EQ(f.sender.countOf(CohKind::InvAck), 1u);
}

TEST(L1, InvalidationDuringUpgradeFallsBackToIM)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::S, 10);
    f.l1.access(true, 0x40, true, f.done(), 20); // SM
    auto inv = noc::makePacket(PacketClass::CohCtrl, 64, 0, 0x40);
    setKind(*inv, CohKind::Inv, 0);
    f.l1.deliver(std::move(inv), 25);
    EXPECT_EQ(f.l1.state(0x40), L1State::IM);
    // Full data later completes the store with M.
    f.grant(0x40, Grant::M, 60);
    EXPECT_EQ(f.completions, 2);
    EXPECT_EQ(f.l1.state(0x40), L1State::M);
}

TEST(L1, RecallOfModifiedReturnsDirtyData)
{
    L1Fixture f;
    makeModified(f, 0x40, 0);
    auto recall = noc::makePacket(PacketClass::CohCtrl, 64, 0, 0x40);
    setKind(*recall, CohKind::Recall, 0);
    f.l1.deliver(std::move(recall), 20);
    auto data = f.sender.findLast(CohKind::RecallData);
    ASSERT_NE(data, nullptr);
    EXPECT_TRUE(data->info.flags & coherence::kFlagDirty);
    EXPECT_EQ(data->numFlits, 9);
    EXPECT_EQ(f.l1.state(0x40), L1State::I);
}

TEST(L1, RecallOfExclusiveAcksClean)
{
    L1Fixture f;
    f.l1.access(false, 0x40, true, f.done(), 0);
    f.grant(0x40, Grant::E, 10);
    auto recall = noc::makePacket(PacketClass::CohCtrl, 64, 0, 0x40);
    setKind(*recall, CohKind::Recall, 0);
    f.l1.deliver(std::move(recall), 20);
    auto ack = f.sender.findLast(CohKind::RecallAck);
    ASSERT_NE(ack, nullptr);
    EXPECT_FALSE(ack->info.flags & coherence::kFlagPutMInFlight);
    EXPECT_EQ(f.l1.state(0x40), L1State::I);
}

TEST(L1, RecallAfterEvictionFlagsPutMInFlight)
{
    L1Fixture f;
    makeModified(f, 0x40, 0);
    makeModified(f, 0x42, 20);
    f.l1.access(false, 0x44, true, f.done(), 40); // PutM(0x40) in flight
    auto recall = noc::makePacket(PacketClass::CohCtrl, 64, 0, 0x40);
    setKind(*recall, CohKind::Recall, 0);
    f.l1.deliver(std::move(recall), 45);
    auto ack = f.sender.findLast(CohKind::RecallAck);
    ASSERT_NE(ack, nullptr);
    EXPECT_TRUE(ack->info.flags & coherence::kFlagPutMInFlight);
}

TEST(L1, MshrLimitRejectsExcessMisses)
{
    L1Fixture f;
    // 4 MSHRs; issue 4 misses to different sets, the 5th is refused.
    EXPECT_TRUE(f.l1.access(false, 0x40, true, f.done(), 0));
    EXPECT_TRUE(f.l1.access(false, 0x41, true, f.done(), 0));
    EXPECT_TRUE(f.l1.access(false, 0x42, true, f.done(), 0));
    EXPECT_TRUE(f.l1.access(false, 0x43, true, f.done(), 0));
    EXPECT_FALSE(f.l1.access(false, 0x45, true, f.done(), 0));
    EXPECT_EQ(f.group.counter("l1_retries").value(), 1u);
}

TEST(L1, ConflictingOutstandingAccessRejected)
{
    L1Fixture f;
    EXPECT_TRUE(f.l1.access(false, 0x40, true, f.done(), 0));
    EXPECT_FALSE(f.l1.access(true, 0x40, true, f.done(), 1));
    EXPECT_FALSE(f.l1.access(false, 0x40, true, f.done(), 1));
}

/** A sender whose backlog is externally scripted. */
class BackloggedSender : public FakeSender
{
  public:
    std::size_t backlog() const override { return fakeBacklog; }
    std::size_t fakeBacklog = 0;
};

TEST(L1, StoreBufferBackpressureRejectsStores)
{
    stats::Group group("cache");
    BackloggedSender sender;
    L1Cache l1("l1.0", 0, sender, HomeMap{}, L1Fixture::cfg(), group);
    sender.fakeBacklog = coherence::kStoreBufferDepth;
    EXPECT_FALSE(l1.access(true, 0x40, true, std::function<void(Cycle)>{}, 0));
    // Loads are unaffected by store-buffer pressure.
    EXPECT_TRUE(l1.access(false, 0x41, true, std::function<void(Cycle)>{}, 0));
    sender.fakeBacklog = 0;
    EXPECT_TRUE(l1.access(true, 0x40, true, std::function<void(Cycle)>{}, 1));
}

// ---------------------------------------------------------------------
// L2 bank / directory tests.
// ---------------------------------------------------------------------

struct L2Fixture
{
    L2Fixture()
        : group("cache"),
          bank("l2bank0", 0, 64, sender, L2Config{}, group)
    {}

    /** Advance the bank to cycle @p until (exclusive). */
    void
    tickTo(Cycle until)
    {
        for (; now < until; ++now)
            bank.tick(now);
    }

    /** Complete the three-phase handshake for a granted request. */
    void
    unblock(CoreId core, BlockAddr addr)
    {
        auto u = noc::makePacket(PacketClass::CohCtrl, core, 64, addr);
        setKind(*u, CohKind::Unblock, core);
        bank.deliver(std::move(u), now);
    }

    PacketPtr
    request(CohKind kind, CoreId core, BlockAddr addr, bool l2hit = true)
    {
        const PacketClass cls = kind == CohKind::GetS
                                    ? PacketClass::ReadReq
                                    : kind == CohKind::GetM
                                          ? PacketClass::WriteReq
                                          : PacketClass::WritebackReq;
        auto pkt = noc::makePacket(cls, core, 64, addr);
        pkt->destBank = 0;
        setKind(*pkt, kind, core);
        if (l2hit)
            pkt->info.flags |= coherence::kFlagL2Hit;
        return pkt;
    }

    stats::Group group;
    FakeSender sender;
    L2Bank bank;
    Cycle now = 0;
};

TEST(L2, GetSOnIdleBlockGrantsExclusive)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.tickTo(10); // 3-cycle bank read
    auto data = f.sender.findLast(CohKind::Data);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->dest, 3);
    EXPECT_EQ(static_cast<Grant>(data->info.aux), Grant::E);
    const auto *dir = f.bank.dirEntry(0x100);
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->state, coherence::DirEntry::State::E);
    EXPECT_EQ(dir->owner, 3);
    // Three-phase: the transaction stays open until the Unblock.
    EXPECT_FALSE(f.bank.idle(f.now));
    f.unblock(3, 0x100);
    f.tickTo(12);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, SecondReaderTriggersRecallAndSharesData)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.tickTo(10);
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetS, 5, 0x100), 10);
    f.tickTo(12);
    auto recall = f.sender.findLast(CohKind::Recall);
    ASSERT_NE(recall, nullptr);
    EXPECT_EQ(recall->dest, 3);
    // Owner answers clean (it never wrote).
    auto ack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*ack, CohKind::RecallAck, 3);
    f.bank.deliver(std::move(ack), 20);
    f.tickTo(30);
    auto data = f.sender.findLast(CohKind::Data);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->dest, 5);
    EXPECT_EQ(static_cast<Grant>(data->info.aux), Grant::S);
    f.unblock(5, 0x100);
    const auto *dir = f.bank.dirEntry(0x100);
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->state, coherence::DirEntry::State::S);
}

TEST(L2, GetMInvalidatesSharersThenGrantsM)
{
    L2Fixture f;
    // Build S state with sharers 3 and 5 (3 first gets E, recall makes
    // it S, then 5 shares).
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.tickTo(10);
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetS, 5, 0x100), 10);
    f.tickTo(12);
    auto ack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*ack, CohKind::RecallAck, 3);
    f.bank.deliver(std::move(ack), 20);
    f.tickTo(30);
    f.unblock(5, 0x100);
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 30);
    f.tickTo(40); // now sharers = {3, 5}
    f.unblock(3, 0x100);

    // Core 7 wants to write: both sharers get Inv.
    f.bank.deliver(f.request(CohKind::GetM, 7, 0x100), 40);
    f.tickTo(42);
    EXPECT_EQ(f.sender.countOf(CohKind::Inv), 2u);
    auto ack3 = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*ack3, CohKind::InvAck, 3);
    f.bank.deliver(std::move(ack3), 50);
    f.tickTo(55);
    EXPECT_EQ(f.sender.countOf(CohKind::Data), 3u); // not yet
    auto ack5 = noc::makePacket(PacketClass::CohCtrl, 5, 64, 0x100);
    setKind(*ack5, CohKind::InvAck, 5);
    f.bank.deliver(std::move(ack5), 55);
    f.tickTo(70);
    auto data = f.sender.findLast(CohKind::Data);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->dest, 7);
    EXPECT_EQ(static_cast<Grant>(data->info.aux), Grant::M);
    f.unblock(7, 0x100);
    f.tickTo(72);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, UpgradeFromSharerSkipsDataTransfer)
{
    L2Fixture f;
    // Make 3 a (sole) sharer in S state.
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.tickTo(10);
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetS, 5, 0x100), 10);
    f.tickTo(12);
    auto rack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*rack, CohKind::RecallAck, 3);
    f.bank.deliver(std::move(rack), 20);
    f.tickTo(30); // sharers = {5}
    f.unblock(5, 0x100);

    f.bank.deliver(f.request(CohKind::GetM, 5, 0x100), 30);
    f.tickTo(40);
    auto up = f.sender.findLast(CohKind::UpgradeAck);
    ASSERT_NE(up, nullptr);
    EXPECT_EQ(up->dest, 5);
    EXPECT_EQ(up->numFlits, 1);
    const auto *dir = f.bank.dirEntry(0x100);
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->state, coherence::DirEntry::State::M);
    EXPECT_EQ(dir->owner, 5);
    f.unblock(5, 0x100);
    f.tickTo(42);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, StoreWriteOccupiesBankAndSendsNoResponse)
{
    L2Fixture f;
    auto st = f.request(CohKind::WriteL2, 3, 0x100);
    f.bank.deliver(std::move(st), 0);
    f.tickTo(30);
    EXPECT_FALSE(f.bank.idle(f.now)); // the 33-cycle write is running
    f.tickTo(40);
    EXPECT_GE(f.group.counter("bank_writes").value(), 1u);
    // Fire-and-forget: nothing was sent back to core 3.
    EXPECT_TRUE(f.sender.sent.empty());
    EXPECT_TRUE(f.bank.idle(f.now));
    EXPECT_EQ(f.bank.dirEntry(0x100), nullptr);
    EXPECT_EQ(f.group.counter("l2_stores").value(), 1u);
}

TEST(L2, StoreWriteMissFetchesLineThenMergeWrites)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::WriteL2, 3, 0x300, false), 0);
    f.tickTo(5);
    ASSERT_FALSE(f.sender.sent.empty());
    auto memreq = f.sender.sent.back();
    ASSERT_EQ(memreq->cls, PacketClass::MemReq);
    f.tickTo(100);
    auto resp = noc::makePacket(PacketClass::MemResp, memreq->dest, 64,
                                0x300);
    f.bank.deliver(std::move(resp), 100);
    f.tickTo(140);
    EXPECT_GE(f.group.counter("bank_writes").value(), 1u);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, StoreWriteInvalidatesSharersFirst)
{
    L2Fixture f;
    // Build S state with sharer 3.
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.tickTo(10); // E to 3
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetS, 5, 0x100), 10);
    f.tickTo(12);
    auto rack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*rack, CohKind::RecallAck, 3);
    f.bank.deliver(std::move(rack), 20);
    f.tickTo(30); // sharers = {5}
    f.unblock(5, 0x100);

    // Core 9 store-writes the block: 5 must be invalidated first.
    f.bank.deliver(f.request(CohKind::WriteL2, 9, 0x100), 30);
    f.tickTo(32);
    auto inv = f.sender.findLast(CohKind::Inv);
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->dest, 5);
    const auto writes_before = f.group.counter("bank_writes").value();
    auto ack = noc::makePacket(PacketClass::CohCtrl, 5, 64, 0x100);
    setKind(*ack, CohKind::InvAck, 5);
    f.bank.deliver(std::move(ack), 40);
    f.tickTo(90);
    EXPECT_GT(f.group.counter("bank_writes").value(), writes_before);
    EXPECT_EQ(f.bank.dirEntry(0x100), nullptr);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, StoreWriteRecallsTheOwner)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetM, 3, 0x100), 0);
    f.tickTo(10); // 3 owns M
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::WriteL2, 9, 0x100), 10);
    f.tickTo(12);
    auto recall = f.sender.findLast(CohKind::Recall);
    ASSERT_NE(recall, nullptr);
    EXPECT_EQ(recall->dest, 3);
    auto data = noc::makePacket(PacketClass::CohData, 3, 64, 0x100);
    setKind(*data, CohKind::RecallData, 3);
    data->info.flags |= coherence::kFlagDirty;
    f.bank.deliver(std::move(data), 20);
    f.tickTo(70);
    EXPECT_TRUE(f.bank.idle(f.now));
    EXPECT_EQ(f.bank.dirEntry(0x100), nullptr);
}

TEST(L2, AdmissionCapBoundsDemandRequests)
{
    L2Fixture f;
    // Demand reads are capped...
    for (int i = 0; i < f.bank.bankController().bank().params().readCycles
                            * 0 + 8; ++i) {
        auto pkt = f.request(CohKind::GetS, i, 0x1000 + i);
        EXPECT_TRUE(f.bank.tryAccept(*pkt));
    }
    auto extra = f.request(CohKind::GetS, 60, 0x2000);
    EXPECT_FALSE(f.bank.tryAccept(*extra));
    EXPECT_GT(f.group.counter("l2_admission_refusals").value(), 0u);
    // ...coherence responses always sink.
    auto ack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*ack, CohKind::InvAck, 3);
    EXPECT_TRUE(f.bank.tryAccept(*ack));
}

TEST(L2, AdmissionSlotsReturnAfterCompletion)
{
    L2Fixture f;
    auto pkt = f.request(CohKind::GetS, 3, 0x100);
    ASSERT_TRUE(f.bank.tryAccept(*pkt));
    EXPECT_EQ(f.bank.admittedRequests(), 1);
    f.bank.deliver(std::move(pkt), 0);
    f.tickTo(20);
    EXPECT_EQ(f.bank.admittedRequests(), 0);
    f.unblock(3, 0x100);
    f.tickTo(22);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, PutMOccupiesBankForFullWriteLatency)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetM, 3, 0x100), 0);
    f.tickTo(10); // 3 owns in M
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::PutM, 3, 0x100), 10);
    f.tickTo(42); // 33-cycle write not quite done (starts ~cycle 10)
    EXPECT_EQ(f.sender.countOf(CohKind::WbAck), 0u);
    f.tickTo(50);
    auto wback = f.sender.findLast(CohKind::WbAck);
    ASSERT_NE(wback, nullptr);
    EXPECT_EQ(f.bank.dirEntry(0x100), nullptr); // back to I
    EXPECT_GE(f.group.counter("bank_writes").value(), 1u);
}

TEST(L2, StalePutMIsAckedAndDropped)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::PutM, 9, 0x200), 0);
    f.tickTo(5);
    EXPECT_EQ(f.sender.countOf(CohKind::WbAck), 1u);
    EXPECT_EQ(f.group.counter("l2_stale_putm").value(), 1u);
    EXPECT_EQ(f.group.counter("bank_writes").value(), 0u);
}

TEST(L2, MissFetchesFromMemoryAndFillsWithWrite)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x300, /*l2hit=*/false),
                   0);
    f.tickTo(5);
    ASSERT_FALSE(f.sender.sent.empty());
    auto memreq = f.sender.sent.back();
    EXPECT_EQ(memreq->cls, PacketClass::MemReq);
    EXPECT_EQ(f.group.counter("l2_misses").value(), 1u);

    f.tickTo(320);
    auto resp = noc::makePacket(PacketClass::MemResp, memreq->dest, 64,
                                0x300);
    f.bank.deliver(std::move(resp), 320);
    f.tickTo(330);
    EXPECT_EQ(f.sender.countOf(CohKind::Data), 0u); // fill write running
    f.tickTo(360);
    auto data = f.sender.findLast(CohKind::Data);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(static_cast<Grant>(data->info.aux), Grant::E);
}

TEST(L2, RequestsToBusyBlockAreSerialised)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetS, 3, 0x100), 0);
    f.bank.deliver(f.request(CohKind::GetS, 5, 0x100), 0);
    EXPECT_EQ(f.bank.tbeCount(), 1u);
    EXPECT_EQ(f.group.counter("l2_blocked_requests").value(), 1u);
    f.tickTo(10);
    // The grant to 3 is in flight; the blocked GetS waits for 3's
    // Unblock, after which it triggers a recall of the new owner.
    EXPECT_EQ(f.sender.countOf(CohKind::Recall), 0u);
    f.unblock(3, 0x100);
    f.tickTo(12);
    auto recall = f.sender.findLast(CohKind::Recall);
    ASSERT_NE(recall, nullptr);
    EXPECT_EQ(recall->dest, 3);
}

TEST(L2, PutMRacingRecallIsInterceptedAsPayload)
{
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetM, 3, 0x100), 0);
    f.tickTo(10); // 3 owns M
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetM, 5, 0x100), 10);
    f.tickTo(12); // recall sent to 3
    EXPECT_EQ(f.sender.countOf(CohKind::Recall), 1u);
    // 3's eviction PutM arrives instead of RecallData.
    f.bank.deliver(f.request(CohKind::PutM, 3, 0x100), 20);
    f.tickTo(60); // dirty data written (33 cycles), then requester served
    EXPECT_EQ(f.sender.countOf(CohKind::WbAck), 1u);
    auto data = f.sender.findLast(CohKind::Data);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data->dest, 5);
    EXPECT_EQ(static_cast<Grant>(data->info.aux), Grant::M);
    f.unblock(5, 0x100);
    f.tickTo(62);
    EXPECT_TRUE(f.bank.idle(f.now));
}

TEST(L2, RecallAckWithPutMInFlightProceedsAndDropsStragglerPutM)
{
    // Waiting for the in-flight PutM could deadlock against bounded
    // write admission (the PutM may be parked behind refused writes),
    // so the directory serves the requester from the bank copy at once
    // and later drops the stale PutM.
    L2Fixture f;
    f.bank.deliver(f.request(CohKind::GetM, 3, 0x100), 0);
    f.tickTo(10);
    f.unblock(3, 0x100);
    f.bank.deliver(f.request(CohKind::GetM, 5, 0x100), 10);
    f.tickTo(12);
    auto rack = noc::makePacket(PacketClass::CohCtrl, 3, 64, 0x100);
    setKind(*rack, CohKind::RecallAck, 3);
    rack->info.flags |= coherence::kFlagPutMInFlight;
    f.bank.deliver(std::move(rack), 20);
    f.tickTo(40);
    EXPECT_EQ(f.sender.countOf(CohKind::Data), 2u); // served already
    f.unblock(5, 0x100);
    f.bank.deliver(f.request(CohKind::PutM, 3, 0x100), 40);
    f.tickTo(60);
    EXPECT_EQ(f.group.counter("l2_stale_putm").value(), 1u);
    EXPECT_EQ(f.sender.countOf(CohKind::WbAck), 1u);
    EXPECT_TRUE(f.bank.idle(f.now));
}

} // namespace
} // namespace stacknoc
