/**
 * @file
 * Unit tests for the workload layer: the Table 3 profile table, the
 * deficit-controlled synthetic stream, and the case-study mixes.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "workload/app_profiles.hh"
#include "workload/mixes.hh"
#include "workload/synthetic_stream.hh"
#include "workload/trace_file.hh"

namespace stacknoc {
namespace {

using workload::AppProfile;
using workload::appTable;
using workload::findApp;
using workload::Suite;
using workload::SyntheticStream;

TEST(AppProfiles, FortyTwoApplications)
{
    EXPECT_EQ(appTable().size(), 42u);
    int server = 0, parsec = 0, spec = 0;
    for (const auto &a : appTable()) {
        switch (a.suite) {
          case Suite::Server: ++server; break;
          case Suite::Parsec: ++parsec; break;
          case Suite::Spec: ++spec; break;
        }
    }
    EXPECT_EQ(server, 4);
    EXPECT_EQ(parsec, 13);
    EXPECT_EQ(spec, 25);
}

TEST(AppProfiles, Table3AdditiveIdentity)
{
    // Table 3 splits every L1 miss into an L2 read or an L2 write:
    // l1mpki ~= l2wpki + l2rpki for every row. (A few paper rows print
    // l2mpki slightly above l1mpki — e.g. swaptions, x264 — so no
    // inequality is asserted on l2mpki; the stream generator clamps the
    // derived miss ratio to 1.)
    for (const auto &a : appTable()) {
        EXPECT_NEAR(a.l1mpki, a.l2wpki + a.l2rpki,
                    0.06 * a.l1mpki + 0.2)
            << a.name;
    }
}

TEST(AppProfiles, KnownRows)
{
    const auto &tpcc = findApp("tpcc");
    EXPECT_DOUBLE_EQ(tpcc.l1mpki, 51.47);
    EXPECT_DOUBLE_EQ(tpcc.l2wpki, 40.90);
    EXPECT_TRUE(tpcc.bursty);
    const auto &libq = findApp("libquantum");
    EXPECT_DOUBLE_EQ(libq.l2wpki, 0.0);
    EXPECT_FALSE(libq.bursty);
}

TEST(AppProfiles, PaperAliasesResolve)
{
    EXPECT_EQ(findApp("sclust").name, "streamcluster");
    EXPECT_EQ(findApp("libqntm").name, "libquantum");
    EXPECT_EQ(findApp("gems").name, "gemsfdtd");
    EXPECT_EQ(findApp("xalan").name, "xalancbmk");
}

TEST(AppProfiles, UnknownAppIsFatal)
{
    EXPECT_DEATH(findApp("nosuchapp"), "unknown application");
}

TEST(SyntheticStreamTest, TargetsDeriveFromProfile)
{
    workload::StreamParams params;
    SyntheticStream s(findApp("tpcc"), 0, 1, params);
    EXPECT_NEAR(s.targetMissProb(), 51.47 / 300.0, 1e-9);
    EXPECT_NEAR(s.targetWriteProb(), 40.90 / 51.47, 1e-9);
    EXPECT_NEAR(s.targetL2HitProb(), 1.0 - 6.06 / 51.47, 1e-9);
}

TEST(SyntheticStreamTest, CapacityFactorScalesL2Misses)
{
    workload::StreamParams params;
    params.l2CapacityMissFactor = 2.0; // SRAM banks
    SyntheticStream s(findApp("tpcc"), 0, 1, params);
    EXPECT_NEAR(s.targetL2HitProb(), 1.0 - 2.0 * 6.06 / 51.47, 1e-9);
}

struct StreamCounts
{
    std::uint64_t instrs = 0, mem = 0, misses = 0, writes = 0, l2hits = 0;
    std::set<int> banks;
};

StreamCounts
drain(SyntheticStream &s, int n)
{
    StreamCounts c;
    for (int i = 0; i < n; ++i) {
        const std::uint64_t misses_before = s.emittedMisses();
        const cpu::TraceOp op = s.next();
        ++c.instrs;
        if (!op.isMem)
            continue;
        ++c.mem;
        if (s.emittedMisses() == misses_before)
            continue; // a synthesised hit
        ++c.misses;
        c.writes += op.isWrite;
        c.l2hits += op.l2Hit;
        c.banks.insert(static_cast<int>(op.addr % 64));
    }
    return c;
}

TEST(SyntheticStreamTest, MemFractionConverges)
{
    workload::StreamParams params;
    SyntheticStream s(findApp("mcf"), 0, 42, params);
    const auto c = drain(s, 200000);
    EXPECT_NEAR(static_cast<double>(c.mem) / c.instrs, 0.3, 0.02);
}

TEST(SyntheticStreamTest, WriteAndL2HitRatiosConverge)
{
    workload::StreamParams params;
    SyntheticStream s(findApp("tpcc"), 0, 42, params);
    const auto c = drain(s, 300000);
    EXPECT_NEAR(static_cast<double>(c.writes) / c.misses,
                s.targetWriteProb(), 0.03);
    EXPECT_NEAR(static_cast<double>(c.l2hits) / c.misses,
                s.targetL2HitProb(), 0.03);
}

TEST(SyntheticStreamTest, TouchesManyBanks)
{
    workload::StreamParams params;
    SyntheticStream s(findApp("tpcc"), 0, 7, params);
    const auto c = drain(s, 100000);
    EXPECT_GT(static_cast<int>(c.banks.size()), 48);
}

TEST(SyntheticStreamTest, SpecAppsNeverTouchSharedRegion)
{
    workload::StreamParams params;
    params.shareProb = 0.5;
    SyntheticStream spec(findApp("lbm"), 3, 7, params);
    for (int i = 0; i < 50000; ++i) {
        const auto op = spec.next();
        if (op.isMem)
            EXPECT_LT(op.addr, 1ULL << 40)
                << "SPEC op hit the shared region";
    }
}

TEST(SyntheticStreamTest, MultithreadedAppsShareAddresses)
{
    workload::StreamParams params;
    params.shareProb = 0.5;
    SyntheticStream a(findApp("streamcluster"), 0, 7, params);
    SyntheticStream b(findApp("streamcluster"), 1, 7, params);
    std::set<BlockAddr> addrs_a;
    for (int i = 0; i < 50000; ++i) {
        const auto op = a.next();
        if (op.isMem && op.addr >= (1ULL << 40))
            addrs_a.insert(op.addr);
    }
    int overlap = 0;
    for (int i = 0; i < 50000; ++i) {
        const auto op = b.next();
        if (op.isMem && addrs_a.count(op.addr))
            ++overlap;
    }
    EXPECT_GT(overlap, 100);
}

TEST(SyntheticStreamTest, BurstyAppsClusterOnBanks)
{
    // Count back-to-back misses that land on the same bank: the bursty
    // profile must cluster far more than the non-bursty one.
    auto same_bank_rate = [](const char *app) {
        workload::StreamParams params;
        SyntheticStream s(findApp(app), 0, 9, params);
        int prev_bank = -1;
        int same = 0, misses = 0;
        for (int i = 0; i < 400000; ++i) {
            const std::uint64_t before = s.emittedMisses();
            const auto op = s.next();
            if (!op.isMem || s.emittedMisses() == before)
                continue; // only misses touch new bank-mapped addresses
            const int bank = static_cast<int>(op.addr % 64);
            if (bank == prev_bank)
                ++same;
            prev_bank = bank;
            ++misses;
        }
        return static_cast<double>(same) / misses;
    };
    EXPECT_GT(same_bank_rate("tpcc"), 2.0 * same_bank_rate("mcf"));
}

TEST(Mixes, Case1Composition)
{
    const auto mix = workload::mixCase1();
    ASSERT_EQ(mix.size(), 64u);
    int lbm = 0;
    for (const auto &name : mix)
        lbm += name == "lbm";
    EXPECT_EQ(lbm, 16);
}

TEST(Mixes, Case2UsesTheFourCaseApps)
{
    const auto mix = workload::mixCase2();
    ASSERT_EQ(mix.size(), 64u);
    const auto apps = workload::case2Apps();
    for (const auto &name : mix)
        EXPECT_NE(std::find(apps.begin(), apps.end(), name), apps.end());
}

TEST(Mixes, Case3ThirtyTwoValidMixes)
{
    const auto mixes = workload::mixesCase3(5);
    ASSERT_EQ(mixes.size(), 32u);
    for (const auto &mix : mixes) {
        ASSERT_EQ(mix.size(), 64u);
        for (const auto &name : mix)
            (void)findApp(name); // fatal on invalid
    }
}

TEST(Mixes, IntensityClassesAreSane)
{
    const auto writes = workload::writeIntensiveApps();
    const auto reads = workload::readIntensiveApps();
    EXPECT_NE(std::find(writes.begin(), writes.end(), "tpcc"),
              writes.end());
    EXPECT_NE(std::find(writes.begin(), writes.end(), "lbm"),
              writes.end());
    EXPECT_NE(std::find(reads.begin(), reads.end(), "libquantum"),
              reads.end());
    EXPECT_NE(std::find(reads.begin(), reads.end(), "mcf"), reads.end());
    for (const auto &w : writes)
        EXPECT_EQ(std::find(reads.begin(), reads.end(), w), reads.end());
}

/** Parameterised sweep: every Table 3 application's stream converges to
 *  its target rates (deficit control is exact in the long run). */
class AllAppsRates : public ::testing::TestWithParam<int>
{
};

TEST_P(AllAppsRates, MissRateConvergesToTable3)
{
    const AppProfile &profile =
        appTable()[static_cast<std::size_t>(GetParam())];
    workload::StreamParams params;
    SyntheticStream s(profile, 0, 3, params);
    const int instrs = 200000;
    for (int i = 0; i < instrs; ++i)
        (void)s.next();
    // Deficit control makes the long-run miss rate exact: compare
    // misses per kilo-instruction to the Table 3 target.
    const double mpki =
        1000.0 * static_cast<double>(s.emittedMisses()) / instrs;
    const double target = std::min(1000.0 * params.memFraction,
                                   profile.l1mpki);
    EXPECT_NEAR(mpki, target, std::max(0.6, 0.05 * target))
        << profile.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table3, AllAppsRates, ::testing::Range(0, 42),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string name =
            appTable()[static_cast<std::size_t>(info.param)].name;
        for (auto &ch : name)
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        return name;
    });

TEST(TraceFile, RecordSaveLoadRoundTrip)
{
    workload::StreamParams params;
    SyntheticStream inner(findApp("tpcc"), 0, 11, params);
    workload::TraceRecorder rec(inner, 5000);
    for (int i = 0; i < 5000; ++i)
        (void)rec.next();
    const std::string path = "/tmp/stacknoc_trace_test.txt";
    ASSERT_TRUE(rec.save(path));

    const auto loaded = workload::loadTrace(path);
    ASSERT_EQ(loaded.size(), rec.ops().size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].isMem, rec.ops()[i].isMem);
        EXPECT_EQ(loaded[i].isWrite, rec.ops()[i].isWrite);
        EXPECT_EQ(loaded[i].addr, rec.ops()[i].addr);
        EXPECT_EQ(loaded[i].l2Hit, rec.ops()[i].l2Hit);
        EXPECT_EQ(loaded[i].dependsOnPrev, rec.ops()[i].dependsOnPrev);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayLoopsAtEnd)
{
    std::vector<cpu::TraceOp> ops;
    cpu::TraceOp mem;
    mem.isMem = true;
    mem.addr = 0x42;
    ops.push_back(mem);
    ops.push_back(cpu::TraceOp{});
    workload::TraceFileStream stream(ops, /*loop=*/true);
    for (int i = 0; i < 10; ++i) {
        const auto a = stream.next();
        const auto b = stream.next();
        EXPECT_TRUE(a.isMem);
        EXPECT_FALSE(b.isMem);
    }
    EXPECT_GE(stream.laps(), 9u);
}

TEST(TraceFile, NoLoopPadsWithNonMem)
{
    std::vector<cpu::TraceOp> ops(1);
    ops[0].isMem = true;
    workload::TraceFileStream stream(std::move(ops), /*loop=*/false);
    EXPECT_TRUE(stream.next().isMem);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(stream.next().isMem);
}

TEST(TraceFile, BadFileIsFatal)
{
    const std::string path = "/tmp/stacknoc_bad_trace.txt";
    std::FILE *f = std::fopen(path.c_str(), "w");
    std::fprintf(f, "X nonsense\n");
    std::fclose(f);
    EXPECT_DEATH(workload::loadTrace(path), "unknown record");
    std::remove(path.c_str());
}

} // namespace
} // namespace stacknoc
