/**
 * @file
 * Unit tests for the trace-driven core model: fetch/commit widths, ROB
 * blocking at the head, memory-level parallelism, and retry of rejected
 * L1 accesses.
 */

#include <gtest/gtest.h>

#include <deque>

#include "coherence/l1_cache.hh"
#include "cpu/core.hh"

namespace stacknoc {
namespace {

using coherence::CohKind;
using coherence::Grant;
using coherence::HomeMap;
using cpu::Core;
using cpu::TraceOp;

/** Records injected packets (the L1's miss traffic). */
class FakeSender : public noc::PacketSender
{
  public:
    void
    send(noc::PacketPtr pkt, Cycle now) override
    {
        (void)now;
        sent.push_back(std::move(pkt));
    }
    std::vector<noc::PacketPtr> sent;
};

/** Replays a scripted sequence, then emits non-memory instructions. */
class ScriptedStream : public cpu::InstructionStream
{
  public:
    explicit ScriptedStream(std::deque<TraceOp> ops)
        : ops_(std::move(ops))
    {}

    TraceOp
    next() override
    {
        if (ops_.empty())
            return TraceOp{};
        TraceOp op = ops_.front();
        ops_.pop_front();
        return op;
    }

  private:
    std::deque<TraceOp> ops_;
};

struct CpuFixture
{
    explicit CpuFixture(std::deque<TraceOp> ops)
        : group("core"), cache_group("cache"),
          l1("l1.0", 0, sender, HomeMap{}, coherence::L1Config{},
             cache_group),
          stream(std::move(ops)),
          core("core0", 0, l1, stream, cpu::CoreConfig{}, group)
    {}

    void
    runTo(Cycle until)
    {
        for (; now < until; ++now) {
            l1.tick(now);
            core.tick(now);
        }
    }

    /** Answer the oldest unanswered request with a Data grant. */
    void
    answerOldest(Grant g, Cycle when)
    {
        ASSERT_LT(answered, sender.sent.size());
        const auto &req = sender.sent[answered++];
        auto data = noc::makePacket(noc::PacketClass::DataResp, req->dest,
                                    0, req->addr);
        setKind(*data, CohKind::Data, 0);
        data->info.aux = static_cast<std::uint16_t>(g);
        l1.deliver(std::move(data), when);
    }

    stats::Group group;
    stats::Group cache_group;
    FakeSender sender;
    coherence::L1Cache l1;
    ScriptedStream stream;
    Core core;
    Cycle now = 0;
    std::size_t answered = 0;
};

TEST(Core, CommitsTwoNonMemInstructionsPerCycle)
{
    CpuFixture f({});
    f.runTo(100);
    // 2-wide fetch and commit with a 1-cycle fetch->commit offset:
    // asymptotically 2 IPC.
    EXPECT_NEAR(static_cast<double>(f.core.committed()) / 100.0, 2.0,
                0.1);
}

TEST(Core, MemOpAtHeadBlocksCommitUntilDataReturns)
{
    std::deque<TraceOp> ops;
    ops.push_back(TraceOp{true, false, 0x40, true});
    CpuFixture f(std::move(ops));
    f.runTo(20);
    const auto committed_before = f.core.committed();
    f.runTo(60);
    // Still blocked: the single memory op never received data.
    EXPECT_EQ(f.core.committed(), committed_before);
    ASSERT_EQ(f.sender.sent.size(), 1u);
    f.answerOldest(Grant::E, 60);
    f.runTo(70);
    EXPECT_GT(f.core.committed(), committed_before);
}

TEST(Core, RobLimitsOutstandingWork)
{
    std::deque<TraceOp> ops;
    ops.push_back(TraceOp{true, false, 0x40, true});
    CpuFixture f(std::move(ops));
    f.runTo(200);
    // Head blocked: the window fills to its 128-entry capacity.
    EXPECT_EQ(f.core.robOccupancy(), 128u);
}

TEST(Core, MemoryLevelParallelismOverlapsMisses)
{
    // Ten independent misses: issued one per cycle, not one per miss
    // round trip. All ten requests must be in the network before any
    // data returns.
    std::deque<TraceOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back(TraceOp{true, false,
                              static_cast<BlockAddr>(0x100 + i), true});
    CpuFixture f(std::move(ops));
    f.runTo(40);
    EXPECT_EQ(f.sender.sent.size(), 10u);
    EXPECT_EQ(f.core.committed(), 0u);
    for (int i = 0; i < 10; ++i)
        f.answerOldest(Grant::E, 40);
    f.runTo(50);
    EXPECT_GE(f.core.committed(), 10u);
}

TEST(Core, RejectedAccessIsRetriedInOrder)
{
    // Two ops to the same block: the second conflicts with the first's
    // MSHR and must wait, then complete after the data arrives.
    std::deque<TraceOp> ops;
    ops.push_back(TraceOp{true, false, 0x40, true});
    ops.push_back(TraceOp{true, true, 0x40, true});
    CpuFixture f(std::move(ops));
    f.runTo(30);
    EXPECT_EQ(f.sender.sent.size(), 1u); // second op held back
    f.answerOldest(Grant::E, 30);
    f.runTo(40);
    // Second op now hits the Exclusive block silently and commits; the
    // only extra traffic is the three-phase Unblock for the fill.
    EXPECT_GE(f.core.committed(), 2u);
    std::size_t requests = 0;
    for (const auto &p : f.sender.sent)
        requests += p->cls == noc::PacketClass::ReadReq ||
                    p->cls == noc::PacketClass::WriteReq ||
                    p->cls == noc::PacketClass::StoreWrite;
    EXPECT_EQ(requests, 1u);
}

TEST(Core, ResetCommittedZeroesTheWindowCounterOnly)
{
    CpuFixture f({});
    f.runTo(50);
    EXPECT_GT(f.core.committed(), 0u);
    f.core.resetCommitted();
    EXPECT_EQ(f.core.committed(), 0u);
    f.runTo(100);
    EXPECT_GT(f.core.committed(), 0u);
}

} // namespace
} // namespace stacknoc
