"""End-to-end checks of the observability artifacts: runs stacknoc_run
with --profile --chrome-trace --heatmap --progress, then validates
that the Chrome trace is well-formed trace-event JSON with monotonic
timestamps, heatmap grids are exactly mesh-sized, the profile section
is consistent, and that the determinism digest matches a flags-off
run bit-for-bit.

Written pytest-style (plain asserts, test_* functions) but with no
pytest dependency: ``python3 tests/test_observability_artifacts.py
[path/to/stacknoc_run]`` runs every test function, which is how ctest
invokes it.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS = os.path.join(REPO, "tools")
STACKNOC_RUN = os.environ.get("STACKNOC_RUN", "")

RUN_ARGS = ["--mesh", "4x4", "--cycles", "1200", "--warmup", "200",
            "--seed", "3"]
TOTAL_CYCLES = 1400

_cache = {}


def run_binary(*args):
    proc = subprocess.run([STACKNOC_RUN, *args],
                          capture_output=True, text=True)
    assert proc.returncode == 0, \
        f"stacknoc_run {' '.join(args)} failed:\n{proc.stderr}"
    return proc


def artifacts():
    """Produce (and cache) one flags-on run and one flags-off run."""
    if "dir" in _cache:
        return _cache
    tmp = tempfile.mkdtemp(prefix="stacknoc_obs_")
    _cache["dir"] = tmp
    _cache["on"] = os.path.join(tmp, "on.json")
    _cache["off"] = os.path.join(tmp, "off.json")
    _cache["trace"] = os.path.join(tmp, "trace.json")
    _cache["heatmap"] = os.path.join(tmp, "hm")
    _cache["on_proc"] = run_binary(
        *RUN_ARGS, "--threads", "2", "--profile",
        "--power", "--thermal", "--thermal-period", "256",
        "--chrome-trace", _cache["trace"],
        "--heatmap", _cache["heatmap"], "--heatmap-period", "128",
        "--progress", "--json-stats", _cache["on"])
    run_binary(*RUN_ARGS, "--threads", "2",
               "--json-stats", _cache["off"])
    return _cache


def test_validator_accepts_artifacts():
    a = artifacts()
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "validate_observability.py"),
         "--chrome-trace", a["trace"], "--json-stats", a["on"],
         "--heatmap-prefix", a["heatmap"], "--power-prefix", a["heatmap"],
         "--expect-power", "--tolerance", "0.15"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_determinism_digest_matches_flags_off_run():
    a = artifacts()
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "stats_diff.py"),
         a["off"], a["on"]],
        capture_output=True, text=True)
    assert proc.returncode == 0, \
        f"observability flags changed the digest:\n{proc.stdout}"
    assert "identical" in proc.stdout


def test_chrome_trace_is_valid_trace_event_json():
    a = artifacts()
    with open(a["trace"]) as f:
        doc = json.load(f)
    events = doc["traceEvents"]
    assert events

    last_ts = None
    async_depth = {}
    saw_packet_instant = saw_engine_span = False
    for ev in events:
        if ev["ph"] == "M":
            continue
        assert isinstance(ev["ts"], (int, float))
        if last_ts is not None:
            assert ev["ts"] >= last_ts, "timestamps must be monotonic"
        last_ts = ev["ts"]
        if ev["ph"] == "i":
            saw_packet_instant = True
            assert ev["pid"] == 1
            assert 0 <= ev["ts"] <= TOTAL_CYCLES
        elif ev["ph"] in ("b", "e"):
            delta = 1 if ev["ph"] == "b" else -1
            async_depth[ev["id"]] = async_depth.get(ev["id"], 0) + delta
            assert async_depth[ev["id"]] >= 0
        elif ev["ph"] == "X":
            saw_engine_span = True
            assert ev["pid"] == 2
            assert ev["dur"] >= 0
    assert saw_packet_instant, "no packet lifecycle events"
    assert saw_engine_span, "no engine phase spans"
    assert all(d == 0 for d in async_depth.values()), \
        "unbalanced async begin/end pairs"


def test_heatmap_grids_are_exactly_mesh_sized():
    a = artifacts()
    for metric in ("flits", "occupancy", "tsb", "holds"):
        with open(f"{a['heatmap']}.{metric}.json") as f:
            doc = json.load(f)
        assert doc["width"] == 4 and doc["height"] == 4
        assert doc["layers"] == 2
        assert doc["frames"], f"{metric}: no frames"
        for frame in doc["frames"]:
            assert len(frame["grids"]) == 2
            for grid in frame["grids"]:
                assert len(grid) == 16


def test_heatmap_flits_show_traffic():
    a = artifacts()
    with open(f"{a['heatmap']}.flits.json") as f:
        doc = json.load(f)
    total = sum(sum(g) for f_ in doc["frames"] for g in f_["grids"])
    assert total > 0, "no flit traversals recorded in any frame"


def test_progress_reports_on_stderr():
    a = artifacts()
    err = a["on_proc"].stderr
    assert "[progress]" in err
    assert "ticks/s" in err


def test_profile_table_on_stdout():
    a = artifacts()
    out = a["on_proc"].stdout
    assert "profile:" in out
    for phase in ("compute", "barrier", "commit", "serial", "cycle_end"):
        assert phase in out, phase


def test_json_stats_profile_section():
    a = artifacts()
    with open(a["on"]) as f:
        on = json.load(f)
    prof = on["profile"]
    assert prof["cycles"] == TOTAL_CYCLES
    assert set(prof["phases"]) == \
        {"compute", "barrier", "commit", "serial", "cycle_end"}
    assert len(prof["shards"]) >= 2
    assert prof["spans_recorded"] > 0
    with open(a["off"]) as f:
        off = json.load(f)
    assert off["profile"] is None


def test_power_section_reconciles_with_compute_energy():
    a = artifacts()
    with open(a["on"]) as f:
        on = json.load(f)
    power = on["power"]
    assert power["reconciliation"]["rel_error"] <= 1e-6
    assert power["totals_uj"]["total"] > 0
    # The measured window is tiled by the intervals exactly.
    series = power["series"]
    assert series[0]["start"] == 200
    assert series[-1]["end"] == TOTAL_CYCLES - 1
    thermal = on["thermal"]
    assert thermal["peak_c"] >= thermal["ambient_c"]
    assert len(thermal["hot_banks"]) > 0
    with open(a["off"]) as f:
        off = json.load(f)
    assert off["power"] is None and off["thermal"] is None


def test_chrome_trace_has_power_counter_tracks():
    a = artifacts()
    with open(a["trace"]) as f:
        doc = json.load(f)
    names = {ev.get("name") for ev in doc["traceEvents"]
             if ev.get("ph") == "C"}
    assert "uncore_power" in names
    assert "hottest_cell" in names


def test_power_and_temperature_grids_render():
    a = artifacts()
    for metric, unit_hint in (("power", "power"),
                              ("temperature", "temperature")):
        proc = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "heatmap_render.py"),
             f"{a['heatmap']}.{metric}.json", "--frame", "-1"],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert unit_hint in proc.stdout


def test_heatmap_render_runs():
    a = artifacts()
    proc = subprocess.run(
        [sys.executable, os.path.join(TOOLS, "heatmap_render.py"),
         f"{a['heatmap']}.flits.json", "--sum"],
        capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "flits" in proc.stdout


def main():
    global STACKNOC_RUN
    if len(sys.argv) > 1:
        STACKNOC_RUN = sys.argv[1]
    if not STACKNOC_RUN or not os.path.exists(STACKNOC_RUN):
        print(f"stacknoc_run binary not found ({STACKNOC_RUN!r}); "
              "pass its path as argv[1] or set STACKNOC_RUN")
        return 1
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and callable(f)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError:
            failures += 1
            import traceback
            print(f"FAIL {name}")
            traceback.print_exc()
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
