"""Tests for tools/stats_diff.py: threshold filtering, section
filtering, and missing-key reporting.

Written pytest-style (plain asserts, test_* functions) but with no
pytest dependency: ``python3 tests/test_stats_diff.py`` runs every
test function and reports a summary, which is how ctest invokes it.
"""

import json
import os
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
STATS_DIFF = os.path.join(REPO, "tools", "stats_diff.py")

BASE = {
    "run": {"scenario": "MRAM-4TSB-WB", "seed": 1},
    "groups": {
        "net": {"packets_injected": 1000, "packets_ejected": 1000},
        "cache": {"bank_writes": 400, "bank_reads": 800.0},
    },
}


def run_diff(doc_a, doc_b, *args):
    """Run stats_diff.py on two documents; return (exit, stdout)."""
    with tempfile.TemporaryDirectory() as tmp:
        pa = os.path.join(tmp, "a.json")
        pb = os.path.join(tmp, "b.json")
        with open(pa, "w") as f:
            json.dump(doc_a, f)
        with open(pb, "w") as f:
            json.dump(doc_b, f)
        proc = subprocess.run(
            [sys.executable, STATS_DIFF, *args, pa, pb],
            capture_output=True, text=True)
    return proc.returncode, proc.stdout


def modified(**changes):
    """BASE with groups.net keys overridden / added."""
    doc = json.loads(json.dumps(BASE))
    doc["groups"]["net"].update(changes)
    return doc


def test_identical_documents_exit_zero():
    code, out = run_diff(BASE, BASE)
    assert code == 0
    assert "identical" in out


def test_changed_value_is_reported():
    code, out = run_diff(BASE, modified(packets_injected=1100))
    assert code == 1
    assert "groups.net.packets_injected" in out
    assert "1000" in out and "1100" in out


def test_threshold_hides_small_drift():
    # 1000 -> 1001 is a 0.1% delta: hidden at a 5% threshold.
    code, out = run_diff(BASE, modified(packets_injected=1001),
                         "--threshold", "0.05")
    assert code == 0
    assert "identical" in out


def test_threshold_keeps_large_drift():
    code, out = run_diff(BASE, modified(packets_injected=2000),
                         "--threshold", "0.05")
    assert code == 1
    assert "groups.net.packets_injected" in out


def test_threshold_does_not_hide_string_changes():
    changed = json.loads(json.dumps(BASE))
    changed["run"]["scenario"] = "MRAM-4TSB-SS"
    code, out = run_diff(BASE, changed, "--threshold", "0.99")
    assert code == 1
    assert "run.scenario" in out


def test_section_filter_limits_comparison():
    # Change both a net and a cache stat; restrict to groups.cache.
    changed = modified(packets_injected=9999)
    changed["groups"]["cache"]["bank_writes"] = 401
    code, out = run_diff(BASE, changed, "--section", "groups.cache")
    assert code == 1
    assert "groups.cache.bank_writes" in out
    assert "packets_injected" not in out


def test_section_filter_can_report_identical():
    code, out = run_diff(BASE, modified(packets_injected=9999),
                         "--section", "groups.cache")
    assert code == 0
    assert "identical" in out


def test_missing_key_is_reported():
    removed = json.loads(json.dumps(BASE))
    del removed["groups"]["net"]["packets_ejected"]
    code, out = run_diff(BASE, removed)
    assert code == 1
    assert "groups.net.packets_ejected" in out
    assert "missing" in out


def test_added_key_is_reported():
    code, out = run_diff(BASE, modified(flits_switched=5))
    assert code == 1
    assert "groups.net.flits_switched" in out
    assert "missing" in out


def test_perf_section_excluded_by_default():
    a = json.loads(json.dumps(BASE))
    a["perf"] = {"wall_seconds": 1.0, "ticks_per_sec": 100.0}
    b = json.loads(json.dumps(BASE))
    b["perf"] = {"wall_seconds": 2.0, "ticks_per_sec": 50.0}
    code, out = run_diff(a, b)
    assert code == 0
    assert "identical" in out


def test_profile_section_excluded_by_default():
    a = json.loads(json.dumps(BASE))
    a["profile"] = {"phases": {"compute": 0.5}, "total_seconds": 0.7}
    b = json.loads(json.dumps(BASE))
    b["profile"] = None
    code, out = run_diff(a, b)
    assert code == 0
    assert "identical" in out


def test_include_perf_compares_wall_clock_sections():
    a = json.loads(json.dumps(BASE))
    a["perf"] = {"wall_seconds": 1.0}
    b = json.loads(json.dumps(BASE))
    b["perf"] = {"wall_seconds": 2.0}
    code, out = run_diff(a, b, "--include-perf")
    assert code == 1
    assert "perf.wall_seconds" in out


def test_perf_exclusion_is_exact_prefix():
    # A group that merely starts with "perf" must still be compared.
    a = json.loads(json.dumps(BASE))
    a["perf_counters"] = {"x": 1}
    b = json.loads(json.dumps(BASE))
    b["perf_counters"] = {"x": 2}
    code, out = run_diff(a, b)
    assert code == 1
    assert "perf_counters.x" in out


def test_one_sided_optional_section_is_skipped():
    # --power on in one run and off in the other: a flag difference,
    # not a determinism failure, so the section must not be diffed.
    a = json.loads(json.dumps(BASE))
    a["power"] = {"totals_uj": {"total": 10.5}}
    b = json.loads(json.dumps(BASE))
    b["power"] = None
    code, out = run_diff(a, b)
    assert code == 0
    assert "identical" in out


def test_optional_section_present_in_both_is_compared():
    a = json.loads(json.dumps(BASE))
    a["power"] = {"totals_uj": {"total": 10.5}}
    b = json.loads(json.dumps(BASE))
    b["power"] = {"totals_uj": {"total": 11.5}}
    code, out = run_diff(a, b)
    assert code == 1
    assert "power.totals_uj.total" in out


def test_one_sided_thermal_section_is_skipped():
    a = json.loads(json.dumps(BASE))
    a["thermal"] = {"peak_c": 61.0}
    a["power"] = {"totals_uj": {"total": 10.5}}
    b = json.loads(json.dumps(BASE))
    b["thermal"] = None
    b["power"] = None
    code, out = run_diff(a, b)
    assert code == 0
    assert "identical" in out


def test_missing_keys_ignore_threshold():
    removed = json.loads(json.dumps(BASE))
    del removed["groups"]["net"]["packets_ejected"]
    code, out = run_diff(BASE, removed, "--threshold", "0.99")
    assert code == 1
    assert "missing" in out


def main():
    tests = [(n, f) for n, f in sorted(globals().items())
             if n.startswith("test_") and callable(f)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError:
            failures += 1
            import traceback
            print(f"FAIL {name}")
            traceback.print_exc()
    print(f"{len(tests) - failures}/{len(tests)} passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
