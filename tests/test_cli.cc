/**
 * @file
 * Smoke tests of the stacknoc_run command-line tool: option handling,
 * scenario selection, and output format stability.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include <sys/wait.h>

namespace stacknoc {
namespace {

/** Run the CLI (relative to the test binary's build directory). */
int
runCli(const std::string &args, std::string *out)
{
    const std::string cmd = "../tools/stacknoc_run " + args + " 2>&1";
    std::FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return -1;
    std::array<char, 512> buf;
    out->clear();
    while (std::fgets(buf.data(), buf.size(), p))
        *out += buf.data();
    return ::pclose(p);
}

TEST(Cli, ListAppsPrintsFortyTwo)
{
    std::string out;
    ASSERT_EQ(runCli("--list-apps", &out), 0);
    int lines = 0;
    for (const char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 42);
    EXPECT_NE(out.find("tpcc"), std::string::npos);
    EXPECT_NE(out.find("calculix"), std::string::npos);
}

TEST(Cli, SmallRunPrintsMetrics)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario MRAM-4TSB-WB --app lbm --mesh 4x4 "
                     "--cycles 3000 --warmup 500", &out), 0);
    EXPECT_NE(out.find("scenario=MRAM-4TSB-WB"), std::string::npos);
    EXPECT_NE(out.find("cores=16"), std::string::npos);
    EXPECT_NE(out.find("mean_ipc="), std::string::npos);
    EXPECT_NE(out.find("energy_uj="), std::string::npos);
}

TEST(Cli, AppsListReplicatesAcrossCores)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario SRAM-64TSB --apps tpcc,lbm --mesh 4x4 "
                     "--cycles 2000 --warmup 500", &out), 0);
    EXPECT_NE(out.find("mean_ipc="), std::string::npos);
}

TEST(Cli, BadScenarioFails)
{
    std::string out;
    EXPECT_NE(runCli("--scenario NOPE --cycles 100", &out), 0);
    EXPECT_NE(out.find("unknown scenario"), std::string::npos);
}

TEST(Cli, BadFlagShowsUsage)
{
    std::string out;
    EXPECT_NE(runCli("--frobnicate", &out), 0);
    EXPECT_NE(out.find("unknown option '--frobnicate'"),
              std::string::npos);
    EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST(Cli, TypoedFlagSuggestsCorrection)
{
    std::string out;
    EXPECT_NE(runCli("--cycels 100", &out), 0);
    EXPECT_NE(out.find("unknown option '--cycels'"), std::string::npos);
    EXPECT_NE(out.find("did you mean '--cycles'?"), std::string::npos);
}

TEST(Cli, ImplausibleTypoGetsNoSuggestion)
{
    std::string out;
    EXPECT_NE(runCli("--zzzzqqqqxxxx", &out), 0);
    EXPECT_NE(out.find("unknown option"), std::string::npos);
    EXPECT_EQ(out.find("did you mean"), std::string::npos);
}

TEST(Cli, ThreadsFlagRunsShardedEngine)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario MRAM-4TSB-WB --app tpcc --mesh 4x4 "
                     "--cycles 1500 --warmup 200 --threads 2", &out), 0);
    EXPECT_NE(out.find("engine=sharded threads=2"), std::string::npos);
    EXPECT_NE(out.find("mean_ipc="), std::string::npos);
}

TEST(Cli, ThreadsZeroRejected)
{
    std::string out;
    EXPECT_NE(runCli("--threads 0", &out), 0);
    EXPECT_NE(out.find("--threads must be >= 1"), std::string::npos);
}

TEST(Cli, FuzzRejectsUnknownFlagWithHint)
{
    std::string out;
    const std::string cmd =
        "../tools/stacknoc_fuzz --rnus 3 2>&1";
    std::FILE *p = ::popen(cmd.c_str(), "r");
    ASSERT_NE(p, nullptr);
    std::array<char, 512> buf;
    out.clear();
    while (std::fgets(buf.data(), buf.size(), p))
        out += buf.data();
    EXPECT_NE(::pclose(p), 0);
    EXPECT_NE(out.find("unknown option '--rnus'"), std::string::npos);
    EXPECT_NE(out.find("did you mean '--runs'?"), std::string::npos);
}

TEST(Cli, StatsFlagDumpsGroups)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario MRAM-64TSB --app x264 --mesh 4x4 "
                     "--cycles 2000 --warmup 500 --stats", &out), 0);
    EXPECT_NE(out.find("cache.l1_hits"), std::string::npos);
    EXPECT_NE(out.find("net.packets_injected"), std::string::npos);
}

TEST(Cli, MalformedFaultSpecFailsWithGrammar)
{
    std::string out;
    const int rc = runCli("--fault-spec nonsense=9 --cycles 100", &out);
    EXPECT_NE(rc, 0);
    // A clean non-zero exit with a one-line reason plus the accepted
    // grammar — not an assert or a stack trace.
    EXPECT_EQ(out.find("Assertion"), std::string::npos);
    EXPECT_NE(out.find("bad --fault-spec"), std::string::npos);
    EXPECT_NE(out.find("unknown fault-spec key 'nonsense'"),
              std::string::npos);
    EXPECT_NE(out.find("fault-spec grammar"), std::string::npos);
    EXPECT_NE(out.find("stt_write_ber"), std::string::npos);
}

TEST(Cli, OutOfRangeFaultRateRejected)
{
    std::string out;
    EXPECT_NE(runCli("--fault-spec stt_write_ber=1.5 --cycles 100",
                     &out), 0);
    EXPECT_NE(out.find("bad --fault-spec"), std::string::npos);
}

TEST(Cli, FaultSpecRunProducesFaultStats)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario MRAM-4TSB-WB --app tpcc --mesh 4x4 "
                     "--cycles 4000 --warmup 500 --validate --stats "
                     "--fault-spec stt_write_ber=1e-2", &out), 0);
    EXPECT_NE(out.find("faults.stt_write_failures"), std::string::npos);
    EXPECT_NE(out.find("faults.retries_per_write"), std::string::npos);
}

TEST(Cli, WatchdogFlagAccepted)
{
    std::string out;
    ASSERT_EQ(runCli("--scenario MRAM-4TSB-WB --app tpcc --mesh 4x4 "
                     "--cycles 2000 --warmup 200 --watchdog 5000",
                     &out), 0);
    EXPECT_NE(out.find("mean_ipc="), std::string::npos);
}

TEST(Cli, TimeoutGuardExits124AndFlushesStats)
{
    std::string out;
    const std::string json = "cli_timeout_stats.json";
    const int rc = runCli("--scenario MRAM-4TSB-WB --app tpcc "
                          "--mesh 4x4 --cycles 2000000000 --warmup 100 "
                          "--timeout-sec 1 --json-stats " + json, &out);
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_EQ(WEXITSTATUS(rc), 124);
    EXPECT_NE(out.find("TIMEOUT"), std::string::npos);
    std::ifstream in(json);
    ASSERT_TRUE(in.good()) << "partial stats were not flushed";
    std::string doc((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(doc.find("\"timed_out\":true"), std::string::npos);
    std::remove(json.c_str());
}

} // namespace
} // namespace stacknoc
