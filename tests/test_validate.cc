/**
 * @file
 * The validation subsystem itself: the hub's sweep/fail-fast machinery,
 * checkers staying silent on healthy scenarios, an intentionally
 * injected busy-counter bug being caught with a cycle-stamped
 * diagnostic, and the differential golden model of bank service order
 * agreeing with the full simulator.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "telemetry/trace.hh"
#include "system/cmp_system.hh"
#include "validate/golden.hh"
#include "validate/invariants.hh"

namespace stacknoc {
namespace {

system::SystemConfig
smallConfig(const system::Scenario &sc, bool fail_fast = true)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = sc;
    cfg.apps = {"tpcc"};
    cfg.seed = 7;
    cfg.validate = true;
    cfg.validation.failFast = fail_fast;
    return cfg;
}

// ---------------------------------------------------------------- hub

class RiggedChecker : public validate::Checker
{
  public:
    explicit RiggedChecker(Cycle fire_at) : fireAt_(fire_at) {}

    const char *name() const override { return "rigged"; }

    void
    check(Cycle now, std::vector<validate::Violation> &out) override
    {
        ++calls;
        if (now >= fireAt_)
            out.push_back({name(), now, "rigged violation"});
    }

    int calls = 0;

  private:
    Cycle fireAt_;
};

TEST(ValidationHub, PeriodGatesSweeps)
{
    validate::ValidationConfig cfg;
    cfg.period = 4;
    cfg.failFast = false;
    validate::ValidationHub hub(cfg);
    auto checker = std::make_unique<RiggedChecker>(Cycle{1000});
    RiggedChecker *raw = checker.get();
    hub.add(std::move(checker));

    for (Cycle c = 1; c <= 16; ++c)
        hub.onCycle(c);
    EXPECT_EQ(raw->calls, 4); // cycles 4, 8, 12, 16
    EXPECT_EQ(hub.sweeps(), 4u);
    EXPECT_TRUE(hub.violations().empty());
}

TEST(ValidationHub, CollectsCycleStampedViolations)
{
    validate::ValidationConfig cfg;
    cfg.failFast = false;
    validate::ValidationHub hub(cfg);
    hub.add(std::make_unique<RiggedChecker>(Cycle{3}));

    for (Cycle c = 1; c <= 5; ++c)
        hub.onCycle(c);
    ASSERT_EQ(hub.violations().size(), 3u);
    EXPECT_EQ(hub.violations().front().cycle, 3u);
    EXPECT_EQ(hub.violations().front().checker, "rigged");
}

// ----------------------------------------------------- healthy systems

TEST(Checkers, SilentOnHealthyScenarios)
{
    for (const auto &sc : {system::scenarios::sttram4TsbSS(),
                           system::scenarios::sttram4TsbWb(),
                           system::scenarios::sttramBuff20()}) {
        system::CmpSystem sys(smallConfig(sc));
        sys.warmup(500); // exercise the stats-reset re-baselining
        sys.run(3000);
        ASSERT_NE(sys.validation(), nullptr);
        EXPECT_TRUE(sys.validation()->violations().empty()) << sc.name;
        EXPECT_GT(sys.validation()->sweeps(), 0u);
        // Conservation, credits, bank accounting, MESI are always on;
        // parent-hold additionally when the scenario has a scheme.
        EXPECT_GE(sys.validation()->checkerCount(),
                  sc.scheme.has_value() ? 5u : 4u)
            << sc.name;
    }
}

// ------------------------------------------------------ injected bugs

TEST(Checkers, InjectedBusyCounterBugIsCaught)
{
    auto cfg = smallConfig(system::scenarios::sttram4TsbSS(),
                           /*fail_fast=*/false);
    system::CmpSystem sys(cfg);
    sys.run(200);
    ASSERT_TRUE(sys.validation()->violations().empty());

    // Emulate a lost admission-counter decrement on one bank.
    sys.bank(3).corruptAdmissionCountersForTest(+1, 0);
    const Cycle before = sys.simulator().now();
    sys.run(2);

    const auto &vs = sys.validation()->violations();
    ASSERT_FALSE(vs.empty());
    bool found = false;
    for (const auto &v : vs) {
        if (v.checker != "bank-accounting")
            continue;
        found = true;
        EXPECT_GE(v.cycle, before); // stamped with the detection cycle
        EXPECT_NE(v.message.find("bank 3"), std::string::npos)
            << v.message;
    }
    EXPECT_TRUE(found);
}

using CheckersDeathTest = ::testing::Test;

TEST(CheckersDeathTest, FailFastDumpsCycleStampedDiagnostic)
{
    // With fail-fast on, the hub must abort with a diagnostic naming
    // the checker and the detection cycle.
    auto run = [] {
        auto cfg = smallConfig(system::scenarios::sttram4TsbSS());
        system::CmpSystem sys(cfg);
        sys.run(200);
        sys.bank(0).corruptAdmissionCountersForTest(0, +1);
        sys.run(2);
    };
    EXPECT_DEATH(run(), "\\[cycle [0-9]+\\] bank-accounting");
}

// --------------------------------------------------- differential test

TEST(GoldenModel, AgreesWithSimulatorOnBankServiceOrder)
{
    // Plain-mode SS on a small mesh: a bank is a single FIFO with
    // fixed read/write latencies, so the golden model must reproduce
    // every service start and the total busy cycles exactly.
    telemetry::PacketTracer tracer(std::size_t{1} << 20, 1);
    telemetry::setTracer(&tracer);

    auto cfg = smallConfig(system::scenarios::sttram4TsbSS());
    system::CmpSystem sys(cfg);
    sys.run(5000);

    const auto records = tracer.snapshot();
    telemetry::setTracer(nullptr);

    const auto report = validate::replayBankTrace(
        records, cfg.scenario.tech);
    for (const auto &m : report.mismatches)
        ADD_FAILURE() << m;
    EXPECT_GT(report.accesses.size(), 100u);
    EXPECT_EQ(report.busyCycles,
              sys.cacheStats().counter("bank_busy_cycles").value());
}

TEST(GoldenModel, DetectsReorderAndWrongStart)
{
    using telemetry::TraceEvent;
    using telemetry::TraceRecord;
    const auto rec = [](Cycle cycle, std::uint64_t pkt, TraceEvent ev,
                        NodeId node, std::int64_t aux) {
        TraceRecord r;
        r.cycle = cycle;
        r.packetId = pkt;
        r.event = ev;
        r.node = node;
        r.aux = aux;
        return r;
    };
    const auto t = mem::CacheTech::SttRam;
    const Cycle rd = mem::bankTech(t).readCycles;

    // Two reads enqueued in order 1, 2 but served 2, 1: a FIFO
    // violation the golden model must flag.
    const std::vector<TraceRecord> reordered{
        rec(10, 1, TraceEvent::BankQueueEnter, 20, 0),
        rec(11, 2, TraceEvent::BankQueueEnter, 20, 2),
        rec(12, 2, TraceEvent::BankServiceStart, 20, 1),
        rec(12 + rd, 1, TraceEvent::BankServiceStart, 20, 0),
    };
    EXPECT_FALSE(validate::replayBankTrace(reordered, t).ok());

    // In-order, but the second start disagrees with start = max(enq,
    // free): served while the golden bank is still busy.
    const std::vector<TraceRecord> early{
        rec(10, 1, TraceEvent::BankQueueEnter, 20, 0),
        rec(10, 1, TraceEvent::BankServiceStart, 20, 0),
        rec(11, 2, TraceEvent::BankQueueEnter, 20, 2),
        rec(12, 2, TraceEvent::BankServiceStart, 20, 1),
    };
    EXPECT_FALSE(validate::replayBankTrace(early, t).ok());

    // The same schedule with the correct second start is clean.
    const std::vector<TraceRecord> good{
        rec(10, 1, TraceEvent::BankQueueEnter, 20, 0),
        rec(10, 1, TraceEvent::BankServiceStart, 20, 0),
        rec(11, 2, TraceEvent::BankQueueEnter, 20, 2),
        rec(10 + rd, 2, TraceEvent::BankServiceStart, 20, 1),
    };
    const auto report = validate::replayBankTrace(good, t);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.busyCycles, 2 * rd);
}

} // namespace
} // namespace stacknoc
