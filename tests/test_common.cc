/**
 * @file
 * Unit tests for the common module: RNG, geometry, logging format.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/cli.hh"
#include "common/geometry.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace stacknoc {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(64), 64u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(3);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
}

TEST(Rng, ChanceFrequency)
{
    Rng r(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.range(3, 5);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, BurstLengthBounded)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const auto len = r.burstLength(0.9, 8);
        EXPECT_GE(len, 1u);
        EXPECT_LE(len, 8u);
    }
}

TEST(Geometry, RoundTripAllNodes)
{
    const MeshShape shape(8, 8, 2);
    EXPECT_EQ(shape.totalNodes(), 128);
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        EXPECT_EQ(shape.node(shape.coord(n)), n);
}

TEST(Geometry, PaperNumbering)
{
    // Figure 4: core nodes 0..63 on layer 0, cache nodes 64..127 below.
    const MeshShape shape(8, 8, 2);
    EXPECT_EQ(shape.node(0, 0, 0), 0);
    EXPECT_EQ(shape.node(7, 0, 0), 7);
    EXPECT_EQ(shape.node(0, 1, 0), 8);
    EXPECT_EQ(shape.node(0, 0, 1), 64);
    EXPECT_EQ(shape.node(3, 3, 1), 91); // the region-0 TSB cache node
    EXPECT_EQ(shape.node(3, 3, 0), 27); // the core node above it
}

TEST(Geometry, HopDistance)
{
    const MeshShape shape(8, 8, 2);
    EXPECT_EQ(shape.hopDistance(0, 0), 0);
    EXPECT_EQ(shape.hopDistance(0, 7), 7);
    EXPECT_EQ(shape.hopDistance(0, 64), 1);
    EXPECT_EQ(shape.hopDistance(63, 64), 15); // 7 + 7 + 1
    EXPECT_EQ(shape.planarDistance(63, 64), 14);
}

TEST(Geometry, Contains)
{
    const MeshShape shape(4, 4, 2);
    EXPECT_TRUE(shape.contains({0, 0, 0}));
    EXPECT_TRUE(shape.contains({3, 3, 1}));
    EXPECT_FALSE(shape.contains({4, 0, 0}));
    EXPECT_FALSE(shape.contains({0, -1, 0}));
    EXPECT_FALSE(shape.contains({0, 0, 2}));
}

TEST(Cli, EditDistance)
{
    EXPECT_EQ(cli::editDistance("", ""), 0u);
    EXPECT_EQ(cli::editDistance("abc", "abc"), 0u);
    EXPECT_EQ(cli::editDistance("abc", ""), 3u);
    EXPECT_EQ(cli::editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(cli::editDistance("--cycels", "--cycles"), 2u);
}

TEST(Cli, ClosestOptionPicksNearest)
{
    const std::vector<std::string> opts = {"--cycles", "--seed",
                                           "--threads"};
    EXPECT_EQ(cli::closestOption("--cycels", opts), "--cycles");
    EXPECT_EQ(cli::closestOption("--thread", opts), "--threads");
    EXPECT_EQ(cli::closestOption("--sede", opts), "--seed");
}

TEST(Cli, ClosestOptionRejectsImplausible)
{
    const std::vector<std::string> opts = {"--cycles", "--seed"};
    EXPECT_EQ(cli::closestOption("--zzzzqqqqxxxxw", opts), "");
}

TEST(Logging, Format)
{
    EXPECT_EQ(detail::format("x=%d y=%s", 3, "abc"), "x=3 y=abc");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH({ panic("boom %d", 42); }, "boom 42");
}

} // namespace
} // namespace stacknoc
