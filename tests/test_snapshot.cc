/**
 * @file
 * The checkpoint/restore contract: a run restored from a warm-boundary
 * checkpoint must produce stats bit-identical to the uninterrupted run,
 * at any --threads and with elision on or off, for clean and faulty
 * configurations — across the {seeds} x {1,4 threads} x {elide,
 * no-elide} x {clean, faults} cross product. Plus rejection tests:
 * corruption, truncation, version and warm-config mismatches must fail
 * with a one-line reason, never a crash or a silently wrong run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_spec.hh"
#include "noc/packet.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/state_io.hh"
#include "system/cmp_system.hh"

using namespace stacknoc;

namespace {

constexpr Cycle kWarmup = 1200;
constexpr Cycle kCycles = 2500;

system::SystemConfig
baseConfig(std::uint64_t seed, int threads, bool elide,
           bool with_faults)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    std::vector<std::string> apps;
    const std::vector<std::string> mix{"tpcc", "lbm", "mcf",
                                       "libquantum"};
    for (int c = 0; c < 16; ++c)
        apps.push_back(mix[static_cast<std::size_t>(c) % 4]);
    cfg.apps = apps;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.elide = elide;
    cfg.stream.numBanks = 16;
    if (with_faults) {
        std::string err;
        const bool ok = fault::parseFaultSpec(
            "stt_write_ber=1e-3,link_flit_ber=2e-4,tsb_flit_ber=1e-4",
            cfg.faults, err);
        EXPECT_TRUE(ok) << err;
        cfg.faultsEnabled = true;
    }
    return cfg;
}

/** Uninterrupted reference run: warmup + measure, one process. */
std::uint64_t
runUninterrupted(const system::SystemConfig &cfg)
{
    noc::resetPacketIds();
    system::CmpSystem sys(cfg);
    sys.warmup(kWarmup);
    sys.run(kCycles);
    return snapshot::statsDigest(sys);
}

/** Capture a checkpoint at the warm boundary of a fresh run. */
std::string
captureCheckpoint(const system::SystemConfig &cfg)
{
    noc::resetPacketIds();
    system::CmpSystem sys(cfg);
    sys.warmupBegin();
    sys.run(kWarmup);
    sys.warmupEnd();
    std::ostringstream out(std::ios::binary);
    snapshot::saveCheckpoint(sys, out,
                             snapshot::warmConfigDigest(cfg, kWarmup));
    return out.str();
}

/** Restore the checkpoint into a fresh system and run to completion. */
std::uint64_t
runRestored(const system::SystemConfig &cfg, const std::string &ckpt)
{
    noc::resetPacketIds();
    system::CmpSystem sys(cfg);
    std::istringstream in(ckpt, std::ios::binary);
    const std::string err = snapshot::restoreCheckpoint(
        sys, in, snapshot::warmConfigDigest(cfg, kWarmup));
    EXPECT_EQ(err, "");
    sys.run(kCycles);
    return snapshot::statsDigest(sys);
}

} // namespace

TEST(Snapshot, RoundTripBitIdentityMatrix)
{
    for (const bool faults : {false, true}) {
        for (const std::uint64_t seed : {1ull, 23ull}) {
            // The reference digest and the checkpoint both come from
            // the canonical sequential elided configuration...
            const auto ref_cfg = baseConfig(seed, 1, true, faults);
            const std::uint64_t ref = runUninterrupted(ref_cfg);
            const std::string ckpt = captureCheckpoint(ref_cfg);
            ASSERT_FALSE(ckpt.empty());

            // ...and every restore target must reproduce it exactly,
            // whatever engine the restored run uses.
            for (const int threads : {1, 4}) {
                for (const bool elide : {true, false}) {
                    const auto cfg =
                        baseConfig(seed, threads, elide, faults);
                    EXPECT_EQ(runRestored(cfg, ckpt), ref)
                        << "seed=" << seed << " threads=" << threads
                        << " elide=" << elide << " faults=" << faults;
                }
            }
        }
    }
}

TEST(Snapshot, WarmDigestIgnoresEngineKnobs)
{
    const auto a = baseConfig(1, 1, true, false);
    auto b = baseConfig(1, 4, false, false);
    b.intervalPeriod = 64; // observer-only
    EXPECT_EQ(snapshot::warmConfigDigest(a, kWarmup),
              snapshot::warmConfigDigest(b, kWarmup));

    auto c = baseConfig(1, 1, true, false);
    c.seed = 2;
    EXPECT_NE(snapshot::warmConfigDigest(a, kWarmup),
              snapshot::warmConfigDigest(c, kWarmup));
    EXPECT_NE(snapshot::warmConfigDigest(a, kWarmup),
              snapshot::warmConfigDigest(a, kWarmup + 1));
}

TEST(Snapshot, RejectsCorruptionTruncationAndMismatch)
{
    const auto cfg = baseConfig(5, 1, true, false);
    const std::string ckpt = captureCheckpoint(cfg);
    const std::uint64_t digest =
        snapshot::warmConfigDigest(cfg, kWarmup);

    const auto restoreErr = [&](const std::string &bytes,
                                std::uint64_t expect) {
        noc::resetPacketIds();
        system::CmpSystem sys(cfg);
        std::istringstream in(bytes, std::ios::binary);
        return snapshot::restoreCheckpoint(sys, in, expect);
    };

    // The pristine checkpoint restores.
    EXPECT_EQ(restoreErr(ckpt, digest), "");

    // Warm-config mismatch.
    EXPECT_NE(restoreErr(ckpt, digest ^ 1).find("different warm"),
              std::string::npos);

    // Bad magic.
    std::string bad = ckpt;
    bad[0] = 'X';
    EXPECT_NE(restoreErr(bad, digest).find("bad magic"),
              std::string::npos);

    // Unsupported format version.
    bad = ckpt;
    bad[8] = static_cast<char>(snapshot::kFormatVersion + 1);
    EXPECT_NE(restoreErr(bad, digest).find("version"),
              std::string::npos);

    // Payload corruption is caught by the checksum.
    bad = ckpt;
    bad[bad.size() / 2] ^= char(0xff);
    EXPECT_NE(restoreErr(bad, digest).find("checksum"),
              std::string::npos);

    // Truncation.
    bad = ckpt.substr(0, ckpt.size() - 16);
    EXPECT_NE(restoreErr(bad, digest).find("truncated"),
              std::string::npos);
    bad = ckpt.substr(0, 10);
    EXPECT_NE(restoreErr(bad, digest).find("truncated"),
              std::string::npos);
}

TEST(Snapshot, RefusesValidationSystems)
{
    auto cfg = baseConfig(1, 1, true, false);
    cfg.validate = true;
    noc::resetPacketIds();
    system::CmpSystem sys(cfg);
    sys.warmupBegin();
    sys.run(64);
    sys.warmupEnd();
    std::ostringstream out(std::ios::binary);
    EXPECT_THROW(snapshot::saveCheckpoint(
                     sys, out, snapshot::warmConfigDigest(cfg, 64)),
                 snapshot::SnapshotError);
}
