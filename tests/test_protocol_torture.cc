/**
 * @file
 * Protocol torture tests (in the spirit of gem5's Ruby Random Tester):
 * all cores hammer a tiny shared block pool to maximise coherence
 * races, while an invariant checker asserts the single-writer /
 * multiple-reader property over every L1 and home directory each few
 * cycles, and liveness (every core keeps committing).
 */

#include <gtest/gtest.h>

#include "coherence/messages.hh"
#include "system/cmp_system.hh"

namespace stacknoc {
namespace {

using coherence::L1State;

struct TortureRig
{
    explicit TortureRig(system::Scenario sc, std::uint64_t seed)
    {
        cfg.meshWidth = 4;
        cfg.meshHeight = 4;
        cfg.scenario = std::move(sc);
        // streamcluster is multi-threaded, so shareProb applies; a pool
        // of 48 blocks across 16 cores guarantees constant conflicts.
        cfg.apps = {"streamcluster"};
        cfg.stream.shareProb = 1.0;
        cfg.stream.sharedPoolBlocks = 48;
        cfg.stream.reuseProb = 0.0;
        cfg.seed = seed;
        sys = std::make_unique<system::CmpSystem>(cfg);
    }

    /** SWMR: a Modified/Exclusive copy excludes every other copy. */
    void
    checkSwmr() const
    {
        constexpr BlockAddr kSharedBase = 1ULL << 40;
        for (BlockAddr addr = kSharedBase; addr < kSharedBase + 48;
             ++addr) {
            int holders_mx = 0;
            int holders_s = 0;
            for (int c = 0; c < sys->numCores(); ++c) {
                switch (sys->l1(c).state(addr)) {
                  case L1State::M:
                  case L1State::E:
                    ++holders_mx;
                    break;
                  case L1State::S:
                    ++holders_s;
                    break;
                  default:
                    break;
                }
            }
            ASSERT_LE(holders_mx, 1)
                << "two owners of block " << std::hex << addr;
            if (holders_mx == 1) {
                ASSERT_EQ(holders_s, 0)
                    << "owner and sharer coexist on block " << std::hex
                    << addr;
            }
        }
    }

    system::SystemConfig cfg;
    std::unique_ptr<system::CmpSystem> sys;
};

class Torture : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Torture, SwmrHoldsUnderRandomConflicts)
{
    TortureRig rig(system::scenarios::sttram64Tsb(), GetParam());
    for (int round = 0; round < 200; ++round) {
        rig.sys->run(64);
        rig.checkSwmr();
    }
    // Liveness: every core made progress through the storm.
    for (int c = 0; c < rig.sys->numCores(); ++c)
        EXPECT_GT(rig.sys->core(c).committed(), 100u) << "core " << c;
    // The storm actually exercised the protocol.
    EXPECT_GT(rig.sys->cacheStats().counter("l2_invs_sent").value() +
                  rig.sys->cacheStats().counter("l2_recalls_sent").value(),
              50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Torture,
                         ::testing::Values(1u, 7u, 1234u));

TEST(TortureScheme, SwmrHoldsUnderTheBankAwareScheme)
{
    // The re-ordering policy must not break coherence.
    TortureRig rig(system::scenarios::sttram4TsbWb(), 99);
    for (int round = 0; round < 150; ++round) {
        rig.sys->run(64);
        rig.checkSwmr();
    }
    for (int c = 0; c < rig.sys->numCores(); ++c)
        EXPECT_GT(rig.sys->core(c).committed(), 100u);
}

TEST(TortureScheme, SwmrHoldsUnderHoldModeAndWriteBuffer)
{
    auto hold = system::scenarios::sttram4TsbWb();
    hold.delayMode = sttnoc::DelayMode::Hold;
    TortureRig rig(hold, 5);
    for (int round = 0; round < 100; ++round) {
        rig.sys->run(64);
        rig.checkSwmr();
    }

    TortureRig buff(system::scenarios::sttramBuff20(), 6);
    for (int round = 0; round < 100; ++round) {
        buff.sys->run(64);
        buff.checkSwmr();
    }
}

TEST(TortureRealTags, SwmrHoldsWithRealL2Tags)
{
    TortureRig rig(system::scenarios::sttram64Tsb(), 21);
    rig.cfg.realTags = true;
    rig.sys = std::make_unique<system::CmpSystem>(rig.cfg);
    for (int round = 0; round < 100; ++round) {
        rig.sys->run(64);
        rig.checkSwmr();
    }
}

} // namespace
} // namespace stacknoc
