/**
 * @file
 * The execution engines' determinism contract: running the same system
 * with --threads {2,4,8} must be bit-identical to --threads 1 — every
 * counter, every double-precision average sum, every telemetry trace
 * record, in the same order — and the idle-elision engine must be
 * bit-identical to the full --no-elide walk across the whole
 * {elide, no-elide} x {1,2,4,8} threads x seeds x {clean, faults}
 * cross product. Plus unit tests of the shard partition itself (every
 * component assigned exactly once, equal affinity keys co-sharded,
 * cross-layer TSB pairs never split).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "engine/shard_plan.hh"
#include "fault/fault_spec.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"
#include "telemetry/trace.hh"

using namespace stacknoc;

namespace {

system::SystemConfig
baseConfig(std::uint64_t seed, int threads, bool elide = true,
           bool with_faults = false)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc", "lbm", "mcf", "libquantum"};
    // Expand round-robin to one app per core.
    std::vector<std::string> apps;
    for (int c = 0; c < 16; ++c)
        apps.push_back(cfg.apps[static_cast<std::size_t>(c) % 4]);
    cfg.apps = apps;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.elide = elide;
    cfg.validate = true;
    cfg.validation.failFast = true;
    cfg.intervalPeriod = 128;
    if (with_faults) {
        // Write BER plus link/TSB BER so retry and recovery paths run
        // under elision (a fuzz staple, see docs/RESILIENCE.md).
        std::string err;
        const bool ok = fault::parseFaultSpec(
            "stt_write_ber=1e-3,link_flit_ber=2e-4,tsb_flit_ber=1e-4",
            cfg.faults, err);
        EXPECT_TRUE(ok) << err;
        cfg.faultsEnabled = true;
    }
    return cfg;
}

/** Bit-exact digest of every stat in @p g (doubles as raw bits). */
void
digestGroup(std::ostringstream &os, const stats::Group &g)
{
    os << "[" << g.name() << "]\n";
    for (const auto &[n, c] : g.allCounters())
        os << n << "=" << c.value() << "\n";
    for (const auto &[n, a] : g.allAverages()) {
        os << n << " sum_bits=" << std::bit_cast<std::uint64_t>(a.sum())
           << " count=" << a.count() << "\n";
    }
    for (const auto &[n, d] : g.allDistributions()) {
        os << n << " total=" << d.total();
        for (std::size_t i = 0; i < d.numBins(); ++i)
            os << " " << d.binCount(i);
        os << "\n";
    }
    for (const auto &[n, h] : g.allHistograms()) {
        os << n << " count=" << h.count() << " sum=" << h.sum()
           << " min=" << h.minValue() << " max=" << h.maxValue();
        for (std::size_t i = 0; i < stats::Histogram::kNumBuckets; ++i)
            os << " " << h.bucketCount(i);
        os << "\n";
    }
}

struct RunDigest
{
    std::string stats;
    std::string trace;
    std::string metrics;
};

/** Build, warm up and run one system; digest everything observable. */
RunDigest
runOnce(std::uint64_t seed, int threads, bool elide = true,
        bool with_faults = false, Cycle warmup = 200, Cycle cycles = 1500)
{
    // Fresh id streams so in-process runs mint identical packet ids.
    noc::resetPacketIds();

    telemetry::MemoryTraceSink sink;
    telemetry::PacketTracer tracer(1 << 14, 1);
    tracer.setSink(&sink);
    telemetry::setTracer(&tracer);

    RunDigest out;
    {
        system::CmpSystem sys(
            baseConfig(seed, threads, elide, with_faults));
        sys.warmup(warmup);
        sys.run(cycles);
        tracer.flush();

        std::ostringstream stats;
        digestGroup(stats, sys.cacheStats());
        digestGroup(stats, sys.coreStats());
        digestGroup(stats, sys.memStats());
        digestGroup(stats, sys.network().stats());
        if (sys.policy())
            digestGroup(stats, sys.policy()->stats());
        out.stats = stats.str();

        std::ostringstream trace;
        trace << "records=" << sink.records().size() << "\n";
        for (const auto &r : sink.records()) {
            trace << r.cycle << " " << r.packetId << " "
                  << static_cast<int>(r.cls) << " "
                  << telemetry::traceEventName(r.event) << " " << r.node
                  << " " << r.aux << "\n";
        }
        out.trace = trace.str();

        const auto m = sys.metrics();
        std::ostringstream metrics;
        metrics << "cycles=" << m.cycles;
        for (const double ipc : m.ipc)
            metrics << " " << std::bit_cast<std::uint64_t>(ipc);
        metrics << " net=" << std::bit_cast<std::uint64_t>(
            m.avgNetworkLatency);
        out.metrics = metrics.str();

        EXPECT_NE(sys.validation(), nullptr);
        EXPECT_TRUE(sys.validation()->violations().empty());
    }
    telemetry::setTracer(nullptr);
    return out;
}

} // namespace

TEST(EngineEquivalence, TenSeedThreadSweepBitIdentical)
{
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const RunDigest ref = runOnce(seed, 1);
        ASSERT_FALSE(ref.stats.empty());
        ASSERT_NE(ref.trace, "records=0\n")
            << "trace digest is vacuous; tracer not wired?";
        for (const int threads : {2, 4, 8}) {
            const RunDigest got = runOnce(seed, threads);
            EXPECT_EQ(ref.stats, got.stats)
                << "stats diverged: seed " << seed << ", " << threads
                << " threads";
            EXPECT_EQ(ref.trace, got.trace)
                << "trace diverged: seed " << seed << ", " << threads
                << " threads";
            EXPECT_EQ(ref.metrics, got.metrics)
                << "metrics diverged: seed " << seed << ", " << threads
                << " threads";
        }
    }
}

TEST(EngineEquivalence, ElisionCrossProductBitIdentical)
{
    // {elide, no-elide} x {1,2,4,8} threads x 10 seeds x {clean,
    // faults}: every cell must match the elide/1-thread reference for
    // its (seed, faults) pair. Shorter runs than the ten-seed sweep
    // keep the 160-run cross product affordable; divergence, if any,
    // shows within a few hundred cycles because the first elided tick
    // that should have run skews every downstream stat.
    const Cycle kWarmup = 100, kCycles = 600;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (const bool faults : {false, true}) {
            const RunDigest ref =
                runOnce(seed, 1, true, faults, kWarmup, kCycles);
            ASSERT_FALSE(ref.stats.empty());
            for (const bool elide : {true, false}) {
                for (const int threads : {1, 2, 4, 8}) {
                    if (elide && threads == 1)
                        continue; // the reference itself
                    const RunDigest got = runOnce(
                        seed, threads, elide, faults, kWarmup, kCycles);
                    const auto ctx = [&] {
                        std::ostringstream os;
                        os << "seed " << seed << ", " << threads
                           << " threads, elide=" << elide
                           << ", faults=" << faults;
                        return os.str();
                    }();
                    EXPECT_EQ(ref.stats, got.stats)
                        << "stats diverged: " << ctx;
                    EXPECT_EQ(ref.trace, got.trace)
                        << "trace diverged: " << ctx;
                    EXPECT_EQ(ref.metrics, got.metrics)
                        << "metrics diverged: " << ctx;
                }
            }
        }
    }
}

TEST(EngineEquivalence, SequentialRunsAreReproducible)
{
    // Sanity: the digest machinery itself must be deterministic.
    const RunDigest a = runOnce(42, 1);
    const RunDigest b = runOnce(42, 1);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.trace, b.trace);
}

TEST(ShardPlan, EveryComponentAssignedExactlyOnce)
{
    noc::resetPacketIds();
    system::CmpSystem sys(baseConfig(1, 1));
    Simulator &sim = sys.simulator();

    for (const int nshards : {2, 4, 8}) {
        const engine::ShardPlan plan =
            engine::buildShardPlan(sim, nshards);

        std::multiset<const Ticking *> seen;
        std::set<std::uint32_t> ordinals;
        for (const auto &shard : plan.shards) {
            for (const auto &item : shard) {
                seen.insert(item.component);
                ordinals.insert(item.ordinal);
            }
        }
        for (const auto &item : plan.serial) {
            seen.insert(item.component);
            ordinals.insert(item.ordinal);
        }

        EXPECT_EQ(seen.size(), sim.componentCount());
        EXPECT_EQ(ordinals.size(), sim.componentCount());
        for (const Ticking *c : sim.components())
            EXPECT_EQ(seen.count(c), 1u)
                << "component missing or duplicated at " << nshards
                << " shards";
    }
}

TEST(ShardPlan, EqualAffinityKeysAreCoSharded)
{
    noc::resetPacketIds();
    system::CmpSystem sys(baseConfig(1, 1));
    Simulator &sim = sys.simulator();

    const engine::ShardPlan plan = engine::buildShardPlan(sim, 4);

    std::map<int, std::size_t> key_to_shard;
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
        for (const auto &item : plan.shards[s]) {
            EXPECT_NE(item.affinity, Simulator::kSerialAffinity);
            const auto [it, inserted] =
                key_to_shard.emplace(item.affinity, s);
            EXPECT_EQ(it->second, s)
                << "affinity key " << item.affinity
                << " split across shards";
            (void)inserted;
        }
    }
    for (const auto &item : plan.serial)
        EXPECT_EQ(item.affinity, Simulator::kSerialAffinity);
}

TEST(ShardPlan, CrossLayerTsbPairsAreCoSharded)
{
    noc::resetPacketIds();
    system::CmpSystem sys(baseConfig(1, 1));
    Simulator &sim = sys.simulator();
    noc::Network &net = sys.network();
    const int npl = sys.shape().nodesPerLayer();

    const engine::ShardPlan plan = engine::buildShardPlan(sim, 4);

    std::map<const Ticking *, std::size_t> shard_of;
    for (std::size_t s = 0; s < plan.shards.size(); ++s)
        for (const auto &item : plan.shards[s])
            shard_of[item.component] = s;

    for (NodeId n = 0; n < npl; ++n) {
        // The core-layer and cache-layer router (and NI) at one (x, y)
        // coordinate — the endpoints of a potential TSB — must share a
        // shard, or a vertical hop would cross shards outside a
        // channel.
        ASSERT_TRUE(shard_of.count(&net.router(n)));
        EXPECT_EQ(shard_of[&net.router(n)],
                  shard_of[&net.router(n + npl)])
            << "routers of column " << n << " split across shards";
        EXPECT_EQ(shard_of[&net.ni(n)], shard_of[&net.ni(n + npl)])
            << "NIs of column " << n << " split across shards";
        EXPECT_EQ(shard_of[&net.router(n)], shard_of[&net.ni(n)]);
    }
}
