"""Golden determinism corpus: re-runs stacknoc_run for every recorded
scenario/workload pair under tests/golden/ and diffs the fresh
--json-stats output against the checked-in golden with
tools/stats_diff.py (which skips the wall-clock perf/profile sections,
so the comparison is a pure determinism digest).

The corpus pins the simulator's observable behavior across refactors:
any change to tick order, elision, RNG streams, or stat accounting
shows up as a golden diff and must be an intentional re-record
(tests/golden/README.md has the regeneration commands).

One pair additionally re-runs with --no-elide and with --threads 4:
every engine mode must reproduce the identical digest, not just the
recording configuration.

Written pytest-style (plain asserts, test_* functions) but with no
pytest dependency: ``python3 tests/test_golden_digests.py
[path/to/stacknoc_run]`` runs every test function, which is how ctest
invokes it.
"""

import os
import subprocess
import sys
import tempfile

TESTS = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(TESTS)
GOLDEN = os.path.join(TESTS, "golden")
STATS_DIFF = os.path.join(REPO, "tools", "stats_diff.py")
STACKNOC_RUN = os.environ.get("STACKNOC_RUN", "")

# Keep in sync with tests/golden/README.md.
BASE_ARGS = ["--mesh", "4x4", "--cycles", "2000", "--warmup", "200",
             "--seed", "1"]
MIXES = {
    "tpcc": ["--app", "tpcc"],
    "mixed": ["--apps", "tpcc,lbm,mcf,libquantum"],
}
SCENARIOS = ["MRAM-64TSB", "MRAM-4TSB", "MRAM-4TSB-WB"]


def golden_path(scenario, mix):
    return os.path.join(GOLDEN, f"{scenario}_{mix}.json")


def rerun(scenario, mix, extra=()):
    fd, out = tempfile.mkstemp(prefix="stacknoc_golden_",
                               suffix=".json")
    os.close(fd)
    cmd = [STACKNOC_RUN, "--scenario", scenario, *MIXES[mix],
           *BASE_ARGS, *extra, "--json-stats", out]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    assert proc.returncode == 0, \
        f"{' '.join(cmd)} failed:\n{proc.stderr}"
    return out


def diff_against_golden(scenario, mix, fresh):
    proc = subprocess.run(
        [sys.executable, STATS_DIFF, golden_path(scenario, mix), fresh],
        capture_output=True, text=True)
    assert proc.returncode == 0, (
        f"digest diverged from golden {scenario}/{mix}:\n{proc.stdout}"
        f"\nIf the change is intentional, re-record per "
        f"tests/golden/README.md.")


def test_corpus_files_exist():
    for scenario in SCENARIOS:
        for mix in MIXES:
            path = golden_path(scenario, mix)
            assert os.path.isfile(path), f"missing golden {path}"


def test_goldens_reproduce():
    for scenario in SCENARIOS:
        for mix in MIXES:
            fresh = rerun(scenario, mix)
            diff_against_golden(scenario, mix, fresh)
            os.unlink(fresh)


def test_golden_reproduces_without_elision():
    fresh = rerun("MRAM-4TSB-WB", "tpcc", extra=["--no-elide"])
    diff_against_golden("MRAM-4TSB-WB", "tpcc", fresh)
    os.unlink(fresh)


def test_golden_reproduces_with_threads():
    fresh = rerun("MRAM-4TSB-WB", "tpcc", extra=["--threads", "4"])
    diff_against_golden("MRAM-4TSB-WB", "tpcc", fresh)
    os.unlink(fresh)


def main():
    global STACKNOC_RUN
    if len(sys.argv) > 1:
        STACKNOC_RUN = sys.argv[1]
    assert STACKNOC_RUN and os.path.exists(STACKNOC_RUN), \
        "pass the stacknoc_run binary path (or set STACKNOC_RUN)"
    failures = 0
    for name, fn in sorted(globals().items()):
        if name.startswith("test_") and callable(fn):
            try:
                fn()
                print(f"PASS {name}")
            except AssertionError as e:
                failures += 1
                print(f"FAIL {name}: {e}")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
