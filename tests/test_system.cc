/**
 * @file
 * Unit tests for the system layer: scenario factories, the energy
 * model, the evaluation metrics, and the router occupancy probe.
 */

#include <gtest/gtest.h>

#include "system/cmp_system.hh"
#include "system/energy.hh"
#include "system/metrics.hh"
#include "system/scenario.hh"

namespace stacknoc {
namespace {

using system::Scenario;

TEST(Scenarios, FactoriesMatchThePaper)
{
    const auto sram = system::scenarios::sram64Tsb();
    EXPECT_EQ(sram.tech, mem::CacheTech::Sram);
    EXPECT_EQ(sram.tsbRegions, 0);
    EXPECT_FALSE(sram.scheme.has_value());

    const auto wb = system::scenarios::sttram4TsbWb();
    EXPECT_EQ(wb.tech, mem::CacheTech::SttRam);
    EXPECT_EQ(wb.tsbRegions, 4);
    ASSERT_TRUE(wb.scheme.has_value());
    EXPECT_EQ(*wb.scheme, sttnoc::EstimatorKind::Window);
    EXPECT_EQ(wb.parentHops, 2);

    const auto buff = system::scenarios::sttramBuff20();
    EXPECT_TRUE(buff.writeBuffer);
    EXPECT_FALSE(buff.scheme.has_value());

    const auto plus1 = system::scenarios::sttram4TsbWbPlus1Vc();
    EXPECT_EQ(plus1.vcsPerVnet[1], 3); // extra write-class lane

    const auto six = system::scenarios::figureSix();
    EXPECT_EQ(six[0].name, "SRAM-64TSB");
    EXPECT_EQ(six[5].name, "MRAM-4TSB-WB");
}

TEST(Energy, LeakageDominatesAndSttRamWins)
{
    // With zero traffic, energy is pure leakage: STT-RAM banks leak
    // 190.5 mW vs SRAM's 444.6 mW, the source of the paper's ~54%
    // uncore energy saving.
    stats::Group cache("cache"), net("net");
    const Cycle cycles = 3000000000; // one second at 3 GHz
    const auto sram = system::computeEnergy(cache, net,
                                            mem::CacheTech::Sram, 64,
                                            128, cycles);
    const auto stt = system::computeEnergy(cache, net,
                                           mem::CacheTech::SttRam, 64,
                                           128, cycles);
    EXPECT_NEAR(sram.cacheLeakageUJ, 444.6e-3 * 64 * 1e6, 1e3);
    EXPECT_NEAR(stt.cacheLeakageUJ, 190.5e-3 * 64 * 1e6, 1e3);
    EXPECT_DOUBLE_EQ(sram.netLeakageUJ, stt.netLeakageUJ);
    EXPECT_LT(stt.totalUJ(), 0.55 * sram.totalUJ());
}

TEST(Energy, DynamicTermsCountAccessesAndFlits)
{
    stats::Group cache("cache"), net("net");
    cache.counter("bank_reads").inc(1000);
    cache.counter("bank_writes").inc(500);
    net.counter("flits_buffered").inc(2000);
    net.counter("flits_switched").inc(2000);
    const auto e = system::computeEnergy(cache, net,
                                         mem::CacheTech::SttRam, 64, 128,
                                         1);
    EXPECT_NEAR(e.cacheDynamicUJ,
                (1000 * 0.278 + 500 * 0.765) * 1e-3, 1e-9);
    EXPECT_GT(e.netDynamicUJ, 0.0);
    // STT-RAM writes cost ~2.75x reads (Table 2).
    EXPECT_NEAR(0.765 / 0.278, 2.75, 0.01);
}

TEST(Metrics, ThroughputAndExtremes)
{
    system::Metrics m;
    m.ipc = {1.0, 0.5, 1.5};
    EXPECT_DOUBLE_EQ(m.instructionThroughput(), 3.0);
    EXPECT_DOUBLE_EQ(m.minIpc(), 0.5);
    EXPECT_DOUBLE_EQ(m.meanIpc(), 1.0);
}

TEST(Metrics, WeightedSpeedupAndMaxSlowdown)
{
    const std::vector<double> shared{0.5, 1.0};
    const std::vector<double> alone{1.0, 1.0};
    EXPECT_DOUBLE_EQ(system::weightedSpeedup(shared, alone), 1.5);
    EXPECT_DOUBLE_EQ(system::maxSlowdown(shared, alone), 2.0);
}

TEST(Metrics, MismatchedSizesPanic)
{
    EXPECT_DEATH(system::weightedSpeedup({1.0}, {1.0, 2.0}),
                 "size mismatch");
}

TEST(Probe, SeesBufferedRequests)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.probePeriod = 16;
    system::CmpSystem sys(cfg);
    sys.run(8000);
    ASSERT_NE(sys.probe(), nullptr);
    // Somewhere in a hot run there are buffered two-hop requests.
    double total = 0;
    for (int h = 1; h <= 3; ++h)
        total += sys.probe()->avgRequestsAtHops(h);
    EXPECT_GT(total, 0.0);
}

TEST(SystemConfigValidation, BadAppCountIsFatal)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.apps = {"tpcc", "lbm"}; // neither 1 nor 16
    EXPECT_DEATH(system::CmpSystem sys(cfg), "apps must have");
}

TEST(SystemConfigValidation, SchemeWithoutTsbsIsFatal)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.scenario.tsbRegions = 0;
    EXPECT_DEATH(system::CmpSystem sys(cfg), "requires region TSBs");
}

TEST(System, WarmupResetsMeasurement)
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram64Tsb();
    cfg.apps = {"x264"};
    system::CmpSystem sys(cfg);
    sys.warmup(3000);
    EXPECT_EQ(sys.metrics().cycles, 0u);
    EXPECT_EQ(sys.core(0).committed(), 0u);
    sys.run(2000);
    const auto m = sys.metrics();
    EXPECT_EQ(m.cycles, 2000u);
    EXPECT_GT(m.meanIpc(), 0.0);
}

} // namespace
} // namespace stacknoc
