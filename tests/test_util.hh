/**
 * @file
 * Shared helpers for stacknoc tests.
 */

#ifndef STACKNOC_TESTS_TEST_UTIL_HH
#define STACKNOC_TESTS_TEST_UTIL_HH

#include "noc/network.hh"
#include "sim/simulator.hh"

namespace stacknoc::testutil {

/**
 * Step the simulator until the network is empty (all injected packets
 * ejected and no buffered flits) or @p max_cycles elapse.
 * @return true when the network drained.
 */
inline bool
runUntilDrained(Simulator &sim, noc::Network &net, Cycle max_cycles)
{
    const Cycle start = sim.now();
    while (sim.now() - start < max_cycles) {
        sim.run(200);
        const auto &injected = net.stats().counter("packets_injected");
        const auto &ejected = net.stats().counter("packets_ejected");
        if (injected.value() != ejected.value() ||
            net.totalBufferedFlits() != 0) {
            continue;
        }
        bool nis_idle = true;
        for (NodeId n = 0; n < net.shape().totalNodes() && nis_idle; ++n)
            nis_idle = net.ni(n).idle();
        if (nis_idle)
            return true;
    }
    return false;
}

} // namespace stacknoc::testutil

#endif // STACKNOC_TESTS_TEST_UTIL_HH
