/**
 * @file
 * Power & thermal observability: the streaming EnergyProbe must
 * reconcile with the end-of-run computeEnergy (the two paths can never
 * drift), fault-path work must cost energy, and the thermal RC solver
 * must hit its analytic steady state, respond monotonically to power,
 * and be bit-identical at any engine thread count.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_spec.hh"
#include "noc/packet.hh"
#include "system/cmp_system.hh"
#include "system/scenario.hh"
#include "telemetry/power.hh"
#include "telemetry/thermal.hh"

namespace stacknoc {
namespace {

// ------------------------------------------------- thermal solver

telemetry::ThermalParams
solverParams()
{
    telemetry::ThermalParams p;
    // Defaults, stated explicitly so the analytic expectations below
    // stay valid if the shipped defaults are ever retuned.
    p.ambientC = 45.0;
    p.cellCapacityJPerK = 5e-8;
    p.lateralWPerK = 0.010;
    p.verticalWPerK = 0.020;
    p.sinkWPerK = 0.002;
    return p;
}

std::vector<std::vector<double>>
uniformPower(int width, int height, int layers, double watts)
{
    return std::vector<std::vector<double>>(
        static_cast<std::size_t>(layers),
        std::vector<double>(static_cast<std::size_t>(width * height),
                            watts));
}

TEST(ThermalSolver, UniformPowerReachesAnalyticSteadyState)
{
    const telemetry::ThermalParams p = solverParams();
    telemetry::ThermalGrid grid(4, 4, 2, p);
    const double watts = 0.05;
    const auto power = uniformPower(4, 4, 2, watts);

    // tau = C / Gsink = 25 us; integrate for 3 ms >> tau.
    for (int i = 0; i < 3000; ++i)
        grid.step(power, 1e-6);

    // Uniform power: lateral and vertical flows cancel by symmetry,
    // every cell settles at ambient + P / Gsink.
    const double expected = p.ambientC + watts / p.sinkWPerK;
    for (int layer = 0; layer < 2; ++layer) {
        for (int y = 0; y < 4; ++y) {
            for (int x = 0; x < 4; ++x) {
                EXPECT_NEAR(grid.cellC(x, y, layer), expected, 1e-6)
                    << "cell (" << x << "," << y << "," << layer << ")";
            }
        }
    }
    EXPECT_NEAR(grid.layerMaxC(0), expected, 1e-6);
    EXPECT_NEAR(grid.layerMeanC(1), expected, 1e-6);
}

TEST(ThermalSolver, ZeroPowerStaysAtAmbient)
{
    const telemetry::ThermalParams p = solverParams();
    telemetry::ThermalGrid grid(4, 4, 2, p);
    const auto power = uniformPower(4, 4, 2, 0.0);
    for (int i = 0; i < 100; ++i)
        grid.step(power, 1e-6);
    for (int layer = 0; layer < 2; ++layer)
        EXPECT_DOUBLE_EQ(grid.layerMaxC(layer), p.ambientC);
}

TEST(ThermalSolver, MorePowerInACellMeansHigherTemperature)
{
    const telemetry::ThermalParams p = solverParams();
    telemetry::ThermalGrid base(4, 4, 2, p);
    telemetry::ThermalGrid hot(4, 4, 2, p);

    auto base_power = uniformPower(4, 4, 2, 0.02);
    auto hot_power = base_power;
    hot_power[1][2 * 4 + 1] += 0.05; // cell (1, 2) on the cache layer

    for (int i = 0; i < 500; ++i) {
        base.step(base_power, 1e-6);
        hot.step(hot_power, 1e-6);
    }

    EXPECT_GT(hot.cellC(1, 2, 1), base.cellC(1, 2, 1));
    // Every temperature sits at or above ambient under non-negative
    // power, and the heated cell is the hottest cell of the grid.
    EXPECT_GE(base.layerMaxC(0), p.ambientC);
    const auto hottest = hot.hottest();
    EXPECT_EQ(hottest.layer, 1);
    EXPECT_EQ(hottest.x, 1);
    EXPECT_EQ(hottest.y, 2);
    EXPECT_GT(hottest.tempC, hot.layerMeanC(1));
}

TEST(ThermalSolver, LargeStepsAreSubsteppedStably)
{
    const telemetry::ThermalParams p = solverParams();
    telemetry::ThermalGrid grid(4, 4, 2, p);
    const double watts = 0.05;
    const auto power = uniformPower(4, 4, 2, watts);

    // One giant step; explicit Euler would explode without the
    // internal substepping (dt >> C / Gmax).
    grid.step(power, 0.01);
    EXPECT_GT(grid.substepsTaken(), 100u);

    const double expected = p.ambientC + watts / p.sinkWPerK;
    for (int layer = 0; layer < 2; ++layer) {
        EXPECT_GE(grid.layerMaxC(layer), p.ambientC);
        EXPECT_LE(grid.layerMaxC(layer), expected * 1.001);
    }
}

// --------------------------------------------- streaming energy

system::SystemConfig
powerConfig(int threads = 1, const std::string &fault_spec = "")
{
    system::SystemConfig cfg;
    cfg.meshWidth = 4;
    cfg.meshHeight = 4;
    cfg.scenario = system::scenarios::sttram4TsbWb();
    cfg.apps = {"tpcc"};
    cfg.seed = 7;
    cfg.threads = threads;
    cfg.power = true;
    cfg.thermal = true;
    // A period that does not divide the run length, so the final
    // partial interval path is exercised on every run.
    cfg.powerPeriod = 192;
    if (!fault_spec.empty()) {
        std::string err;
        EXPECT_TRUE(fault::parseFaultSpec(fault_spec, cfg.faults, err))
            << err;
        cfg.faultsEnabled = cfg.faults.any();
    }
    return cfg;
}

TEST(EnergyProbe, StreamingSumReconcilesWithComputeEnergy)
{
    noc::resetPacketIds();
    system::CmpSystem sys(powerConfig());
    sys.warmup(1000);
    sys.run(5000);
    sys.finalizeTelemetry();

    const telemetry::EnergyProbe &p = *sys.power();
    const system::EnergyBreakdown e = sys.metrics().energy;

    auto rel = [](double a, double b) {
        const double base = std::max(std::abs(a), std::abs(b));
        return base > 0.0 ? std::abs(a - b) / base : 0.0;
    };
    EXPECT_LT(rel(p.cacheDynamicUJ(), e.cacheDynamicUJ), 1e-6);
    EXPECT_LT(rel(p.cacheLeakageUJ(), e.cacheLeakageUJ), 1e-6);
    EXPECT_LT(rel(p.netDynamicUJ(), e.netDynamicUJ), 1e-6);
    EXPECT_LT(rel(p.netLeakageUJ(), e.netLeakageUJ), 1e-6);
    EXPECT_LT(rel(p.totalUJ(), e.totalUJ()), 1e-6);
    EXPECT_GT(p.totalUJ(), 0.0);

    // The retained frames tile the measured window: first frame
    // starts at warm-up end, spans are contiguous, and the per-frame
    // splits sum back to the streaming totals.
    ASSERT_FALSE(p.frames().empty());
    EXPECT_EQ(p.frames().front().start, Cycle{1000});
    double frame_sum = 0.0;
    Cycle expect_start = 1000;
    for (const telemetry::PowerFrame &f : p.frames()) {
        EXPECT_EQ(f.start, expect_start);
        expect_start = f.end + 1;
        frame_sum += f.totalUJ();
        ASSERT_EQ(f.powerW.size(), 2u);
        ASSERT_EQ(f.powerW[0].size(), 16u);
    }
    EXPECT_EQ(expect_start, Cycle{6000});
    EXPECT_LT(rel(frame_sum, p.totalUJ()), 1e-9);

    // finalize() is idempotent.
    sys.finalizeTelemetry();
    EXPECT_LT(rel(p.totalUJ(), e.totalUJ()), 1e-6);
}

TEST(EnergyProbe, FaultyRunReportsStrictlyMoreEnergy)
{
    const char *spec =
        "stt_write_ber=0.3,stt_write_retries=4,link_flit_ber=2e-4";

    // A low-MPKI workload keeps the banks far from saturation, so the
    // retry rounds and retransmissions run in otherwise-idle slots and
    // the fault-free twin serves essentially the same demand. (Under a
    // bank-saturating workload the closed-loop throughput loss can
    // shed more dynamic energy than the recovery work adds — deferred
    // work, not an accounting gap.)
    auto twin = [](const std::string &fault_spec) {
        noc::resetPacketIds();
        system::SystemConfig cfg = powerConfig(1, fault_spec);
        cfg.apps = {"swaptions"};
        return cfg;
    };
    system::CmpSystem clean(twin(""));
    clean.warmup(1000);
    clean.run(6000);
    clean.finalizeTelemetry();

    system::CmpSystem faulty(twin(spec));
    faulty.warmup(1000);
    faulty.run(6000);
    faulty.finalizeTelemetry();

    // The fault campaign actually produced recovery work...
    ASSERT_GT(faulty.power()->retryWriteUJ(), 0.0);
    ASSERT_GT(faulty.power()->retransmitFlitUJ(), 0.0);
    EXPECT_EQ(clean.power()->retryWriteUJ(), 0.0);
    EXPECT_EQ(clean.power()->retransmitFlitUJ(), 0.0);

    // ...and both accounting paths price it in.
    EXPECT_GT(faulty.power()->totalUJ(), clean.power()->totalUJ());
    const system::EnergyBreakdown ef = faulty.metrics().energy;
    const system::EnergyBreakdown ec = clean.metrics().energy;
    EXPECT_GT(ef.retryWriteUJ, 0.0);
    EXPECT_GT(ef.retransmitFlitUJ, 0.0);
    EXPECT_EQ(ec.retryWriteUJ, 0.0);
    EXPECT_GT(ef.totalUJ(), ec.totalUJ());

    // The faulty run's streaming sum reconciles too (retry rounds and
    // retransmitted flits flow through per-site deltas on one side and
    // the fault-injector counters on the other).
    const double base = std::max(ef.totalUJ(),
                                 faulty.power()->totalUJ());
    EXPECT_LT(std::abs(faulty.power()->totalUJ() - ef.totalUJ()) / base,
              1e-6);
}

// One canonical dump of everything downstream consumers read, at full
// precision, so thread counts can be compared for bit-identity.
std::string
telemetryDigest(const system::CmpSystem &sys)
{
    std::ostringstream os;
    os << std::hexfloat;
    const telemetry::EnergyProbe &p = *sys.power();
    os << "totals " << p.cacheDynamicUJ() << ' ' << p.cacheLeakageUJ()
       << ' ' << p.netDynamicUJ() << ' ' << p.netLeakageUJ() << ' '
       << p.retryWriteUJ() << ' ' << p.retransmitFlitUJ() << '\n';
    for (const telemetry::PowerFrame &f : p.frames()) {
        os << "P " << f.start << ' ' << f.end;
        for (const auto &grid : f.powerW)
            for (const double v : grid)
                os << ' ' << v;
        os << '\n';
    }
    const telemetry::ThermalProbe &t = *sys.thermal();
    os << "peak " << t.peakC() << '\n';
    for (const telemetry::ThermalFrame &f : t.frames()) {
        os << "T " << f.start << ' ' << f.end << ' '
           << f.hottest.layer << ' ' << f.hottest.x << ' '
           << f.hottest.y << ' ' << f.hottest.tempC;
        for (const auto &grid : f.tempC)
            for (const double v : grid)
                os << ' ' << v;
        os << '\n';
    }
    for (const auto &hb : t.hotBanks(8))
        os << "H " << hb.bank << ' ' << hb.tempC << '\n';
    return os.str();
}

TEST(EnergyProbe, BitIdenticalAcrossEngineThreadCounts)
{
    auto digest = [](int threads) {
        noc::resetPacketIds();
        system::CmpSystem sys(powerConfig(threads));
        sys.warmup(500);
        sys.run(4000);
        sys.finalizeTelemetry();
        return telemetryDigest(sys);
    };
    const std::string t1 = digest(1);
    EXPECT_EQ(t1, digest(2)) << "threads=2";
    EXPECT_EQ(t1, digest(4)) << "threads=4";
}

TEST(EnergyProbe, ObserverOnlyDigestIdentity)
{
    // Simulation results must be bit-identical with the probes on or
    // off: same committed instructions, same network counters.
    auto run = [](bool power_on) {
        noc::resetPacketIds();
        system::SystemConfig cfg = powerConfig(2);
        cfg.power = power_on;
        cfg.thermal = power_on;
        system::CmpSystem sys(cfg);
        sys.warmup(500);
        sys.run(4000);
        std::ostringstream os;
        sys.dumpStats(os);
        return os.str();
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(ThermalProbe, RecordsFramesAndRanksHotBanks)
{
    noc::resetPacketIds();
    system::CmpSystem sys(powerConfig(1));
    sys.warmup(1000);
    sys.run(5000);
    sys.finalizeTelemetry();

    const telemetry::ThermalProbe &t = *sys.thermal();
    ASSERT_FALSE(t.frames().empty());
    EXPECT_EQ(t.frames().size(), sys.power()->frames().size());

    const double ambient = t.grid().params().ambientC;
    EXPECT_GT(t.peakC(), ambient);
    for (const telemetry::ThermalFrame &f : t.frames()) {
        ASSERT_EQ(f.tempC.size(), 2u);
        ASSERT_EQ(f.layerMaxC.size(), 2u);
        for (int layer = 0; layer < 2; ++layer) {
            EXPECT_GE(f.layerMaxC[static_cast<std::size_t>(layer)],
                      ambient);
            EXPECT_GE(f.layerMaxC[static_cast<std::size_t>(layer)],
                      f.layerMeanC[static_cast<std::size_t>(layer)]);
        }
    }

    const auto ranked = t.hotBanks(8);
    ASSERT_EQ(ranked.size(), 8u);
    for (std::size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GE(ranked[i - 1].tempC, ranked[i].tempC);
    // Banks live on the cache layer.
    for (const auto &hb : ranked)
        EXPECT_EQ(hb.layer, 1);
}

} // namespace
} // namespace stacknoc
