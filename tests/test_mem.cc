/**
 * @file
 * Unit tests for the memory substrate: Table 2 technology parameters,
 * the timed bank model, the plain FIFO controller, the Sun et al. write
 * buffer with read preemption, and the memory controllers.
 */

#include <gtest/gtest.h>

#include "mem/bank_controller.hh"
#include "mem/bank_model.hh"
#include "mem/memory_controller.hh"
#include "noc/network_interface.hh"
#include "mem/tech.hh"

namespace stacknoc {
namespace {

using mem::BankController;
using mem::BankControllerConfig;
using mem::BankModel;
using mem::BankRequest;
using mem::CacheTech;

TEST(Tech, Table2Values)
{
    const auto &sram = mem::bankTech(CacheTech::Sram);
    EXPECT_EQ(sram.readCycles, 3u);
    EXPECT_EQ(sram.writeCycles, 3u);
    EXPECT_DOUBLE_EQ(sram.leakagePowerMW, 444.6);
    EXPECT_DOUBLE_EQ(sram.capacityMB, 1.0);

    const auto &stt = mem::bankTech(CacheTech::SttRam);
    EXPECT_EQ(stt.readCycles, 3u);
    EXPECT_EQ(stt.writeCycles, 33u);
    EXPECT_DOUBLE_EQ(stt.leakagePowerMW, 190.5);
    EXPECT_DOUBLE_EQ(stt.writeEnergyNJ, 0.765);
    EXPECT_DOUBLE_EQ(stt.capacityMB, 4.0);
    // The paper's "11x larger than router hop latency" ratio.
    EXPECT_EQ(stt.writeCycles / 3, 11u);
}

TEST(BankModel, TimingAndOccupancy)
{
    stats::Group g("cache");
    BankModel bank(CacheTech::SttRam, g);
    EXPECT_FALSE(bank.busy(0));
    EXPECT_EQ(bank.startRead(10), 13u);
    EXPECT_TRUE(bank.busy(12));
    EXPECT_FALSE(bank.busy(13));
    EXPECT_EQ(bank.startWrite(13), 46u);
    EXPECT_TRUE(bank.writingNow(20));
    EXPECT_FALSE(bank.busy(46));
    EXPECT_EQ(g.counter("bank_reads").value(), 1u);
    EXPECT_EQ(g.counter("bank_writes").value(), 1u);
    EXPECT_EQ(g.counter("bank_busy_cycles").value(), 36u);
}

TEST(BankModel, AbortFreesBank)
{
    stats::Group g("cache");
    BankModel bank(CacheTech::SttRam, g);
    bank.startWrite(0);
    EXPECT_TRUE(bank.busy(5));
    bank.abort(5);
    EXPECT_FALSE(bank.busy(5));
    EXPECT_EQ(g.counter("bank_write_aborts").value(), 1u);
}

struct DoneRecorder
{
    std::vector<Cycle> at;
    std::function<void(Cycle)>
    cb()
    {
        return [this](Cycle t) { at.push_back(t); };
    }
};

TEST(BankController, PlainFifoSerialisesRequests)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, BankControllerConfig{}, g);
    DoneRecorder r1, r2, r3;

    BankRequest w{true, 0x10, 0, r1.cb()};
    BankRequest rd{false, 0x20, 0, r2.cb()};
    BankRequest rd2{false, 0x30, 0, r3.cb()};
    ctrl.enqueue(std::move(w), 0);
    ctrl.enqueue(std::move(rd), 0);
    ctrl.enqueue(std::move(rd2), 0);

    for (Cycle t = 0; t <= 100; ++t)
        ctrl.tick(t);
    // Write starts at 0 (done 33), read at 33 (done 36), read at 36
    // (done 39).
    ASSERT_EQ(r1.at.size(), 1u);
    ASSERT_EQ(r2.at.size(), 1u);
    ASSERT_EQ(r3.at.size(), 1u);
    EXPECT_EQ(r1.at[0], 33u);
    EXPECT_EQ(r2.at[0], 36u);
    EXPECT_EQ(r3.at[0], 39u);
    EXPECT_TRUE(ctrl.idle(101));
    EXPECT_EQ(g.counter("bank_requests_served").value(), 3u);
}

TEST(BankController, QueueLatencyMeasuresWaiting)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, BankControllerConfig{}, g);
    DoneRecorder r;
    ctrl.enqueue(BankRequest{true, 1, 0, nullptr}, 0);
    ctrl.enqueue(BankRequest{false, 2, 0, r.cb()}, 0);
    for (Cycle t = 0; t <= 40; ++t)
        ctrl.tick(t);
    // The read waited 33 cycles behind the write.
    EXPECT_DOUBLE_EQ(g.average("bank_queue_latency").mean(), 33.0 / 2);
}

TEST(BankController, GapAfterWriteDistribution)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, BankControllerConfig{}, g);
    ctrl.enqueue(BankRequest{true, 1, 0, nullptr}, 100);   // write
    ctrl.enqueue(BankRequest{false, 2, 0, nullptr}, 110);  // gap 10
    ctrl.enqueue(BankRequest{false, 3, 0, nullptr}, 120);  // after a read
    ctrl.enqueue(BankRequest{true, 4, 0, nullptr}, 200);   // write
    ctrl.enqueue(BankRequest{false, 5, 0, nullptr}, 240);  // gap 40
    const auto &d = g.distribution("gap_after_write",
                                   {16, 33, 66, 99, 132, 165});
    EXPECT_EQ(d.total(), 2u);   // only accesses following a write
    EXPECT_EQ(d.binCount(0), 1u); // gap 10 -> [0,16)
    EXPECT_EQ(d.binCount(2), 1u); // gap 40 -> [33,66)
}

BankControllerConfig
buffConfig()
{
    BankControllerConfig c;
    c.writeBuffer = true;
    c.writeBufferEntries = 20;
    return c;
}

TEST(WriteBuffer, WritesCompleteAtBufferSpeed)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, buffConfig(), g);
    DoneRecorder w;
    ctrl.enqueue(BankRequest{true, 0x1, 0, w.cb()}, 0);
    for (Cycle t = 0; t <= 10; ++t)
        ctrl.tick(t);
    // 1-cycle check + 3-cycle SRAM buffer write: far below 33 cycles.
    ASSERT_EQ(w.at.size(), 1u);
    EXPECT_LE(w.at[0], 5u);
    EXPECT_EQ(ctrl.bufferDepth(), 1u); // still draining to STT-RAM
    for (Cycle t = 11; t <= 60; ++t)
        ctrl.tick(t);
    EXPECT_EQ(ctrl.bufferDepth(), 0u); // drained
}

TEST(WriteBuffer, ReadHitsInBuffer)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, buffConfig(), g);
    DoneRecorder rd;
    ctrl.enqueue(BankRequest{true, 0x1, 0, nullptr}, 0);
    ctrl.tick(0);
    ctrl.tick(1); // write admitted into buffer at cycle 1
    ctrl.enqueue(BankRequest{false, 0x1, 0, rd.cb()}, 2);
    for (Cycle t = 2; t <= 10; ++t)
        ctrl.tick(t);
    ASSERT_EQ(rd.at.size(), 1u);
    EXPECT_LE(rd.at[0], 7u);
    EXPECT_EQ(g.counter("write_buffer_hits").value(), 1u);
}

TEST(WriteBuffer, ReadPreemptsDrainWrite)
{
    stats::Group g("cache");
    BankController ctrl(CacheTech::SttRam, buffConfig(), g);
    ctrl.enqueue(BankRequest{true, 0x1, 0, nullptr}, 0);
    for (Cycle t = 0; t <= 6; ++t)
        ctrl.tick(t); // write buffered and drain started
    DoneRecorder rd;
    ctrl.enqueue(BankRequest{false, 0x2, 0, rd.cb()}, 7);
    for (Cycle t = 7; t <= 60; ++t)
        ctrl.tick(t);
    EXPECT_EQ(g.counter("write_buffer_preemptions").value(), 1u);
    ASSERT_EQ(rd.at.size(), 1u);
    // The read did not wait for the 33-cycle drain to finish.
    EXPECT_LE(rd.at[0], 12u);
    EXPECT_EQ(ctrl.bufferDepth(), 0u); // drain restarted and finished
}

TEST(WriteBuffer, NoPreemptionWhenDisabled)
{
    stats::Group g("cache");
    auto cfg = buffConfig();
    cfg.readPreemption = false;
    BankController ctrl(CacheTech::SttRam, cfg, g);
    ctrl.enqueue(BankRequest{true, 0x1, 0, nullptr}, 0);
    for (Cycle t = 0; t <= 6; ++t)
        ctrl.tick(t);
    DoneRecorder rd;
    ctrl.enqueue(BankRequest{false, 0x2, 0, rd.cb()}, 7);
    for (Cycle t = 7; t <= 80; ++t)
        ctrl.tick(t);
    EXPECT_EQ(g.counter("write_buffer_preemptions").value(), 0u);
    ASSERT_EQ(rd.at.size(), 1u);
    EXPECT_GT(rd.at[0], 33u); // had to wait out the drain
}

TEST(WriteBuffer, FullBufferBackpressuresWrites)
{
    stats::Group g("cache");
    auto cfg = buffConfig();
    cfg.writeBufferEntries = 2;
    BankController ctrl(CacheTech::SttRam, cfg, g);
    for (int i = 0; i < 4; ++i)
        ctrl.enqueue(BankRequest{true, static_cast<BlockAddr>(i), 0,
                                 nullptr}, 0);
    for (Cycle t = 0; t <= 5; ++t)
        ctrl.tick(t);
    EXPECT_EQ(ctrl.bufferDepth(), 2u);
    EXPECT_EQ(ctrl.queueDepth(), 2u); // waiting for drains
    for (Cycle t = 6; t <= 200; ++t)
        ctrl.tick(t);
    EXPECT_TRUE(ctrl.idle(201)); // everything eventually drains
}

TEST(ReadPriority, QueuedReadsOvertakeQueuedWrites)
{
    stats::Group g("cache");
    BankControllerConfig cfg;
    cfg.readPriority = true;
    BankController ctrl(CacheTech::SttRam, cfg, g);
    DoneRecorder rd;
    // Bank starts write #1 at t=0; write #2 and a read queue behind it.
    ctrl.enqueue(BankRequest{true, 1, 0, nullptr}, 0);
    ctrl.tick(0);
    ctrl.enqueue(BankRequest{true, 2, 0, nullptr}, 1);
    ctrl.enqueue(BankRequest{false, 3, 0, rd.cb()}, 2);
    for (Cycle t = 1; t <= 120; ++t)
        ctrl.tick(t);
    ASSERT_EQ(rd.at.size(), 1u);
    // FIFO would serve the read at 33+33+3 = 69; read priority brings
    // it right after the (possibly preempted) first write.
    EXPECT_LE(rd.at[0], 40u);
    EXPECT_TRUE(ctrl.idle(121));
}

TEST(ReadPriority, ReadPreemptsInServiceWrite)
{
    stats::Group g("cache");
    BankControllerConfig cfg;
    cfg.readPriority = true;
    BankController ctrl(CacheTech::SttRam, cfg, g);
    ctrl.enqueue(BankRequest{true, 1, 0, nullptr}, 0);
    ctrl.tick(0); // 33-cycle write starts
    DoneRecorder rd;
    ctrl.enqueue(BankRequest{false, 2, 0, rd.cb()}, 10);
    for (Cycle t = 1; t <= 120; ++t)
        ctrl.tick(t);
    EXPECT_EQ(g.counter("write_buffer_preemptions").value(), 1u);
    ASSERT_EQ(rd.at.size(), 1u);
    EXPECT_LE(rd.at[0], 16u); // did not wait the write out
    // The aborted write restarted and completed.
    EXPECT_EQ(g.counter("bank_writes").value(), 2u); // original + retry
    EXPECT_TRUE(ctrl.idle(121));
}

TEST(ReadPriority, WritesStillCompleteUnderReadPressure)
{
    stats::Group g("cache");
    BankControllerConfig cfg;
    cfg.readPriority = true;
    BankController ctrl(CacheTech::SttRam, cfg, g);
    DoneRecorder wr;
    ctrl.enqueue(BankRequest{true, 1, 0, wr.cb()}, 0);
    for (int i = 0; i < 5; ++i)
        ctrl.enqueue(BankRequest{false, static_cast<BlockAddr>(10 + i),
                                 0, nullptr}, 0);
    for (Cycle t = 0; t <= 200; ++t)
        ctrl.tick(t);
    EXPECT_EQ(wr.at.size(), 1u); // the write eventually lands
    EXPECT_TRUE(ctrl.idle(201));
}

TEST(WriteBuffer, SramBankGainsLittle)
{
    // With a 3-cycle SRAM bank the buffer cannot hide anything: final
    // completion times of a write+read pair are close either way —
    // matching the paper's observation that the techniques only matter
    // for long-latency writes.
    auto last_done = [](bool use_buffer) {
        stats::Group g("cache");
        BankControllerConfig cfg;
        cfg.writeBuffer = use_buffer;
        BankController ctrl(CacheTech::Sram, cfg, g);
        DoneRecorder rd;
        ctrl.enqueue(BankRequest{true, 1, 0, nullptr}, 0);
        ctrl.enqueue(BankRequest{false, 2, 0, rd.cb()}, 0);
        for (Cycle t = 0; t <= 50; ++t)
            ctrl.tick(t);
        return rd.at.at(0);
    };
    const Cycle plain = last_done(false);
    const Cycle buffered = last_done(true);
    EXPECT_LE(buffered + 2, plain + 6); // within a few cycles
}

TEST(MemoryController, FixedLatencyAndBoundedInFlight)
{
    stats::Group net_stats("net"), mem_stats("mem");
    noc::NocParams params;
    // An unconnected NI still queues injected packets, which is all the
    // controller needs for this test.
    noc::NetworkInterface ni("ni64", 64, params, net_stats);
    mem::DramParams dram;
    dram.accessCycles = 320;
    dram.maxInFlight = 4;
    mem::MemoryController mc("mc64", 64, ni, dram, mem_stats);

    for (int i = 0; i < 10; ++i) {
        auto req = noc::makePacket(noc::PacketClass::MemReq, 70, 64,
                                   static_cast<BlockAddr>(0x100 + i));
        req->destBank = 6;
        req->ejectedAt = 0;
        mc.deliver(std::move(req), 0);
    }
    mc.tick(0);
    EXPECT_EQ(mc.inFlight(), 4u);   // bounded window
    EXPECT_EQ(mc.queueDepth(), 6u); // the rest wait

    for (Cycle t = 1; t < 320; ++t)
        mc.tick(t);
    EXPECT_EQ(ni.injectQueueDepth(), 0u); // nothing done before 320
    mc.tick(320);
    EXPECT_EQ(ni.injectQueueDepth(), 4u); // first batch responds
    EXPECT_EQ(mc.inFlight(), 4u);         // next batch started
    // Three waves of four/four/two accesses: 320, 640, 960.
    for (Cycle t = 321; t <= 960; ++t)
        mc.tick(t);
    EXPECT_EQ(ni.injectQueueDepth(), 10u); // all responses injected
    EXPECT_EQ(mem_stats.counter("dram_reads").value(), 10u);
}

TEST(MemoryController, WritesConsumeBandwidthWithoutResponses)
{
    stats::Group net_stats("net"), mem_stats("mem");
    noc::NocParams params;
    noc::NetworkInterface ni("ni64", 64, params, net_stats);
    mem::MemoryController mc("mc64", 64, ni, mem::DramParams{},
                             mem_stats);
    auto wr = noc::makePacket(noc::PacketClass::MemWrite, 70, 64, 0x5);
    wr->ejectedAt = 0;
    mc.deliver(std::move(wr), 0);
    for (Cycle t = 0; t <= 400; ++t)
        mc.tick(t);
    EXPECT_EQ(mem_stats.counter("dram_writes").value(), 1u);
    EXPECT_EQ(ni.injectQueueDepth(), 0u); // fire-and-forget
}

} // namespace
} // namespace stacknoc
