/**
 * @file
 * Ejection-side admission control: a client refusing packets must back
 * traffic up into the network (withheld credits), accepted classes must
 * flow past refused ones on other virtual networks, and everything must
 * drain once the client relents.
 */

#include <gtest/gtest.h>

#include <memory>

#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "test_util.hh"

namespace stacknoc {
namespace {

using noc::PacketClass;

/** Client with a switchable admission gate per class. */
class GatedSink : public noc::NetworkClient
{
  public:
    bool
    tryAccept(const noc::Packet &pkt) override
    {
        if (pkt.cls == gatedClass && closed) {
            ++refusals;
            return false;
        }
        return true;
    }

    void
    deliver(noc::PacketPtr pkt, Cycle) override
    {
        ++delivered;
        lastClass = pkt->cls;
    }

    PacketClass gatedClass = PacketClass::ReadReq;
    bool closed = false;
    int refusals = 0;
    int delivered = 0;
    PacketClass lastClass = PacketClass::ReadReq;
};

struct Fixture
{
    Fixture()
        : shape(4, 4, 2),
          net(sim, shape, noc::NocParams{},
              std::make_unique<noc::ZxyRouting>(shape), policy),
          sinks(static_cast<std::size_t>(shape.totalNodes()))
    {
        for (NodeId n = 0; n < shape.totalNodes(); ++n)
            net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);
    }

    Simulator sim;
    MeshShape shape;
    noc::ArbitrationPolicy policy;
    noc::Network net;
    std::vector<GatedSink> sinks;
};

TEST(Admission, RefusedPacketsWaitAndDeliverAfterReopen)
{
    Fixture f;
    f.sinks[16].closed = true;
    for (int i = 0; i < 4; ++i)
        f.net.ni(0).send(noc::makePacket(PacketClass::ReadReq, 0, 16), 0);
    f.sim.run(400);
    EXPECT_EQ(f.sinks[16].delivered, 0);
    EXPECT_GT(f.sinks[16].refusals, 0);
    // Nothing was lost: reopening admits all four.
    f.sinks[16].closed = false;
    EXPECT_TRUE(testutil::runUntilDrained(f.sim, f.net, 5000));
    EXPECT_EQ(f.sinks[16].delivered, 4);
}

TEST(Admission, RefusalBacksUpIntoTheNetwork)
{
    Fixture f;
    f.sinks[16].closed = true;
    // More single-flit packets than the two REQ ejection VCs can park
    // (2 VCs x 5 slots): the excess must remain inside routers.
    for (int i = 0; i < 30; ++i)
        f.net.ni(0).send(noc::makePacket(PacketClass::ReadReq, 0, 16), 0);
    f.sim.run(600);
    EXPECT_GT(f.net.totalBufferedFlits(), 0);
    f.sinks[16].closed = false;
    EXPECT_TRUE(testutil::runUntilDrained(f.sim, f.net, 8000));
    EXPECT_EQ(f.sinks[16].delivered, 30);
}

TEST(Admission, OtherVnetsFlowPastARefusedClass)
{
    Fixture f;
    f.sinks[16].closed = true; // refuses ReadReq only
    for (int i = 0; i < 6; ++i)
        f.net.ni(0).send(noc::makePacket(PacketClass::ReadReq, 0, 16), 0);
    f.sim.run(300);
    const int delivered_before = f.sinks[16].delivered;
    // Coherence and response packets ride other VCs and must get in.
    f.net.ni(0).send(noc::makePacket(PacketClass::CohCtrl, 0, 16), 300);
    f.net.ni(0).send(noc::makePacket(PacketClass::DataResp, 0, 16), 300);
    f.sim.run(300);
    EXPECT_EQ(f.sinks[16].delivered, delivered_before + 2);
}

TEST(Admission, OtherDestinationsUnaffected)
{
    Fixture f;
    f.sinks[16].closed = true;
    for (int i = 0; i < 10; ++i) {
        f.net.ni(0).send(noc::makePacket(PacketClass::ReadReq, 0, 16), 0);
        f.net.ni(1).send(noc::makePacket(PacketClass::ReadReq, 1, 17), 0);
    }
    f.sim.run(600);
    EXPECT_EQ(f.sinks[17].delivered, 10);
}

TEST(Admission, MultiFlitPacketCommitsAtomically)
{
    Fixture f;
    f.sinks[16].gatedClass = PacketClass::DataResp;
    f.sinks[16].closed = true;
    f.net.ni(0).send(noc::makePacket(PacketClass::DataResp, 0, 16), 0);
    f.sim.run(300);
    EXPECT_EQ(f.sinks[16].delivered, 0);
    f.sinks[16].closed = false;
    f.sim.run(300);
    EXPECT_EQ(f.sinks[16].delivered, 1);
}

} // namespace
} // namespace stacknoc
