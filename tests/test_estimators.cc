/**
 * @file
 * Estimator-focused tests: the RCA sideband fabric's diffusion and the
 * RCA estimator's path charging; window-estimator staleness decay; the
 * end-to-end WB probe/ACK loop through a live network.
 */

#include <gtest/gtest.h>

#include <memory>

#include "noc/network.hh"
#include "noc/routing.hh"
#include "sim/simulator.hh"
#include "sttnoc/bank_aware_policy.hh"
#include "sttnoc/estimator.hh"
#include "sttnoc/rca_fabric.hh"
#include "sttnoc/region_routing.hh"
#include "test_util.hh"

namespace stacknoc {
namespace {

using sttnoc::EstimatorKind;

TEST(RcaFabric, IdleNetworkDiffusesToZero)
{
    Simulator sim;
    const MeshShape shape(4, 4, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    sttnoc::RcaFabric fabric(net);
    sim.add(&fabric);
    sim.onCycleEnd([&](Cycle now) { fabric.onCycleEnd(now); });
    sim.run(50);
    for (NodeId n = 0; n < shape.totalNodes(); ++n)
        EXPECT_EQ(fabric.value(n), 0u);
}

TEST(RcaFabric, CongestionDiffusesToNeighbours)
{
    Simulator sim;
    const MeshShape shape(4, 4, 2);
    noc::ArbitrationPolicy policy;
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<noc::ZxyRouting>(shape), policy);
    class Sink : public noc::NetworkClient
    {
      public:
        bool tryAccept(const noc::Packet &) override { return false; }
        void deliver(noc::PacketPtr, Cycle) override {}
    } closed;
    net.ni(21).setClient(&closed); // node 21 refuses everything

    sttnoc::RcaFabric fabric(net);
    sim.add(&fabric);
    sim.onCycleEnd([&](Cycle now) { fabric.onCycleEnd(now); });
    for (int i = 0; i < 20; ++i)
        net.ni(5).send(
            noc::makePacket(noc::PacketClass::DataResp, 5, 21), 0);
    sim.run(400);
    // The jam around node 21 must be visible there and at neighbours.
    EXPECT_GT(fabric.value(21), 0u);
    EXPECT_GT(fabric.value(20) + fabric.value(22) + fabric.value(17) +
                  fabric.value(25) + fabric.value(5),
              0u);
}

TEST(WindowEstimator, EstimateDecaysWhenStale)
{
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap rm(shape, sttnoc::RegionConfig{});
    sttnoc::ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    params.estimateStaleAfter = 100;
    sttnoc::WindowEstimator est(rm, pm, params);
    const BankId child = rm.bankOfNode(75);
    const NodeId parent = pm.parentOf(child);

    auto pkt = noc::makePacket(noc::PacketClass::StoreWrite, 7, 75);
    pkt->destBank = child;
    est.onForward(child, *pkt, parent, 0);
    ASSERT_GE(pkt->probeStamp, 0);
    auto ack = noc::makePacket(noc::PacketClass::ProbeAck, 75, parent);
    ack->info.origin = static_cast<std::uint32_t>(child);
    ack->info.aux = static_cast<std::uint16_t>(pkt->probeStamp);
    est.onProbeAck(*ack, 100); // large RTT -> non-zero congestion
    EXPECT_GT(est.estimate(child, 120), 0u);
    EXPECT_EQ(est.estimate(child, 500), 0u); // stale: decayed away
}

TEST(WindowEstimator, EndToEndProbeLoopThroughLiveNetwork)
{
    // A full system is not needed: build the restricted network, attach
    // the policy as probe sink, inject store writes from a core, and
    // check a probe echo updates the estimator.
    Simulator sim;
    const MeshShape shape(8, 8, 2);
    sttnoc::RegionMap rm(shape, sttnoc::RegionConfig{});
    sttnoc::ParentMap pm(rm, 2);
    sttnoc::SttAwareParams params;
    params.windowN = 1; // probe every packet
    sttnoc::BankAwarePolicy policy(
        rm, pm, params,
        sttnoc::makeEstimator(EstimatorKind::Window, rm, pm, params,
                              nullptr));
    noc::Network net(sim, shape, noc::NocParams{},
                     std::make_unique<sttnoc::RegionRouting>(rm), policy);
    class Sink : public noc::NetworkClient
    {
      public:
        void deliver(noc::PacketPtr, Cycle) override {}
    };
    std::vector<Sink> sinks(static_cast<std::size_t>(shape.totalNodes()));
    for (NodeId n = 0; n < shape.totalNodes(); ++n) {
        net.ni(n).setClient(&sinks[static_cast<std::size_t>(n)]);
        net.ni(n).setProbeSink(&policy);
    }

    const NodeId bank_node = 75;
    auto pkt = noc::makePacket(noc::PacketClass::StoreWrite, 7,
                               bank_node);
    pkt->destBank = rm.bankOfNode(bank_node);
    net.ni(7).send(std::move(pkt), 0);
    sim.run(300);
    // Probe went out with the forwarded packet and came back: stats
    // prove the loop closed (uncongested -> estimate 0, but the probe
    // state must have cycled, so a second probe can be tagged).
    auto pkt2 = noc::makePacket(noc::PacketClass::StoreWrite, 7,
                                bank_node);
    pkt2->destBank = rm.bankOfNode(bank_node);
    policy.onForward(pm.parentOf(pkt2->destBank), *pkt2, 300);
    EXPECT_GE(pkt2->probeStamp, 0) << "first probe never completed";
}

} // namespace
} // namespace stacknoc
