/**
 * @file
 * Unit tests for the telemetry subsystem: log2 histograms and
 * percentiles, the packet-lifecycle tracer's ring/sink semantics, the
 * interval sampler's window boundaries and warm-up handling, and the
 * JSON writer/parser round trip.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"
#include "telemetry/interval.hh"
#include "telemetry/json.hh"
#include "telemetry/probe.hh"
#include "telemetry/trace.hh"

namespace stacknoc {
namespace {

using telemetry::IntervalSampler;
using telemetry::JsonValue;
using telemetry::JsonWriter;
using telemetry::MemoryTraceSink;
using telemetry::PacketTracer;
using telemetry::TraceEvent;
using telemetry::TraceRecord;

// --- Histogram ------------------------------------------------------

TEST(Histogram, BucketBounds)
{
    using stats::Histogram;
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~0ULL), 64u);
    for (std::size_t b = 0; b < stats::Histogram::kNumBuckets; ++b) {
        // Every bucket's bounds map back into the bucket itself.
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(b)), b);
        EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(b)), b);
    }
}

TEST(Histogram, CountSumMinMax)
{
    stats::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    h.sample(10);
    h.sample(20);
    h.sample(5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 35u);
    EXPECT_EQ(h.minValue(), 5u);
    EXPECT_EQ(h.maxValue(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 35.0 / 3.0);
}

TEST(Histogram, PercentilesClampToObservedRange)
{
    stats::Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(100);
    // All mass on one value: every percentile is that value.
    EXPECT_DOUBLE_EQ(h.percentile(0.01), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
}

TEST(Histogram, PercentilesOrderedAndBracketed)
{
    stats::Histogram h;
    // 90 fast samples and 10 slow ones: p50 must sit in the fast
    // bucket's range and p99 in the slow one's.
    for (int i = 0; i < 90; ++i)
        h.sample(8);
    for (int i = 0; i < 10; ++i)
        h.sample(1000);
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 8.0); // inside the fast samples' bucket [8, 15]
    EXPECT_LE(p50, 15.0);
    EXPECT_GE(p99, 512.0); // inside the slow samples' bucket
    EXPECT_LE(p99, 1000.0);
}

TEST(Histogram, WeightedSamplesAndReset)
{
    stats::Histogram h;
    h.sample(4, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.sum(), 40u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(Histogram, GroupIntegration)
{
    stats::Group g("test");
    auto &h = g.histogram("lat");
    h.sample(7);
    EXPECT_EQ(&g.histogram("lat"), &h); // same name, same object
    ASSERT_NE(g.findHistogram("lat"), nullptr);
    EXPECT_EQ(g.findHistogram("lat")->count(), 1u);
    EXPECT_EQ(g.findHistogram("nope"), nullptr);
    g.reset();
    EXPECT_EQ(h.count(), 0u);
}

// --- PacketTracer ---------------------------------------------------

TEST(PacketTracer, SamplingFilter)
{
    PacketTracer t(16, 4);
    EXPECT_TRUE(t.tracked(0));
    EXPECT_FALSE(t.tracked(1));
    EXPECT_TRUE(t.tracked(8));
    PacketTracer all(16, 1);
    EXPECT_TRUE(all.tracked(7));
}

TEST(PacketTracer, RingWraparoundWithoutSink)
{
    PacketTracer t(4, 1);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(TraceEvent::Inject, i, 0, 0, i);
    // Sinkless ring keeps the newest `capacity` records.
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto snap = t.snapshot();
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_EQ(snap.front().packetId, 6u); // oldest retained
    EXPECT_EQ(snap.back().packetId, 9u);  // newest
}

TEST(PacketTracer, SinkDrainsOnOverflowAndFlush)
{
    MemoryTraceSink sink;
    PacketTracer t(4, 1);
    t.setSink(&sink);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(TraceEvent::RouterArrive, i, 0, 3, i);
    t.flush();
    // With a sink nothing is lost, in order.
    ASSERT_EQ(sink.records().size(), 10u);
    EXPECT_EQ(t.dropped(), 0u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(sink.records()[i].packetId, i);
    EXPECT_EQ(t.size(), 0u); // flushed
}

TEST(PacketTracer, GlobalInstallUninstall)
{
    EXPECT_EQ(telemetry::tracer(), nullptr);
    PacketTracer t;
    telemetry::setTracer(&t);
    EXPECT_EQ(telemetry::tracer(), &t);
    telemetry::setTracer(nullptr);
    EXPECT_EQ(telemetry::tracer(), nullptr);
}

// --- IntervalSampler ------------------------------------------------

TEST(IntervalSampler, WindowBoundaries)
{
    stats::Group g("net");
    auto &c = g.counter("pkts");
    IntervalSampler s(100);
    s.addGroup(&g);
    // onCycle(now) fires after cycle `now`; the first window of 100
    // cycles is 0..99, so the snapshot lands at now == 99.
    for (Cycle now = 0; now < 250; ++now) {
        c.inc();
        s.onCycle(now);
    }
    ASSERT_EQ(s.snapshots().size(), 2u);
    EXPECT_EQ(s.snapshots()[0].cycle, 99u);
    EXPECT_EQ(s.snapshots()[1].cycle, 199u);
    // Snapshots carry cumulative values: 100 then 200 increments.
    ASSERT_FALSE(s.snapshots()[0].values.empty());
    EXPECT_EQ(s.snapshots()[0].values[0].first, "net.pkts");
    EXPECT_DOUBLE_EQ(s.snapshots()[0].values[0].second, 100.0);
    EXPECT_DOUBLE_EQ(s.snapshots()[1].values[0].second, 200.0);
}

TEST(IntervalSampler, WarmupSeparation)
{
    stats::Group g("net");
    g.counter("pkts");
    IntervalSampler s(50);
    s.addGroup(&g);
    for (Cycle now = 0; now < 120; ++now)
        s.onCycle(now);
    // Reset mid-run: earlier snapshots become warm-up and the period
    // phase re-anchors at the reset cycle.
    s.onReset(120);
    for (Cycle now = 120; now < 240; ++now)
        s.onCycle(now);
    const auto &snaps = s.snapshots();
    ASSERT_EQ(snaps.size(), 4u);
    EXPECT_TRUE(snaps[0].warmup);
    EXPECT_TRUE(snaps[1].warmup);
    EXPECT_FALSE(snaps[2].warmup);
    EXPECT_FALSE(snaps[3].warmup);
    EXPECT_EQ(snaps[2].cycle, 169u); // 120 + 50 - 1
    EXPECT_EQ(snaps[3].cycle, 219u);
    EXPECT_EQ(s.measureStart(), 120u);
}

TEST(IntervalSampler, SnapshotCap)
{
    stats::Group g("net");
    IntervalSampler s(10, 3);
    s.addGroup(&g);
    for (Cycle now = 0; now < 100; ++now)
        s.onCycle(now);
    EXPECT_EQ(s.snapshots().size(), 3u);
    EXPECT_EQ(s.droppedSnapshots(), 7u);
}

TEST(ProbeHub, FanOut)
{
    struct CountingProbe : telemetry::Probe
    {
        int cycles = 0, warmups = 0, resets = 0;
        void onCycle(Cycle) override { ++cycles; }
        void onWarmupBegin(Cycle) override { ++warmups; }
        void onReset(Cycle) override { ++resets; }
    };
    CountingProbe a, b;
    telemetry::ProbeHub hub;
    EXPECT_TRUE(hub.empty());
    hub.add(&a);
    hub.add(&b);
    EXPECT_EQ(hub.size(), 2u);
    hub.onCycle(1);
    hub.onWarmupBegin(2);
    hub.onReset(3);
    EXPECT_EQ(a.cycles, 1);
    EXPECT_EQ(b.resets, 1);
    EXPECT_EQ(b.warmups, 1);
}

// --- JSON -----------------------------------------------------------

TEST(Json, WriterEscapingAndStructure)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("s", std::string("a\"b\\c\n"));
    w.key("arr");
    w.beginArray();
    w.value(1);
    w.value(2.5);
    w.value(true);
    w.null();
    w.endArray();
    w.endObject();
    EXPECT_EQ(os.str(),
              "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[1,2.5,true,null]}");
}

TEST(Json, ParserBasics)
{
    auto v = JsonValue::parse(
        R"({"a": [1, 2, 3], "b": {"c": "x"}, "d": -1.5e2, "e": null})");
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->isObject());
    ASSERT_NE(v->find("a"), nullptr);
    EXPECT_EQ(v->find("a")->size(), 3u);
    EXPECT_DOUBLE_EQ(v->find("a")->at(1)->asDouble(), 2.0);
    EXPECT_EQ(v->find("b")->find("c")->asString(), "x");
    EXPECT_DOUBLE_EQ(v->find("d")->asDouble(), -150.0);
    EXPECT_TRUE(v->find("e")->isNull());

    std::string err;
    EXPECT_FALSE(JsonValue::parse("{broken", &err).has_value());
    EXPECT_FALSE(err.empty());
}

TEST(Json, GroupRoundTrip)
{
    stats::Group g("net");
    g.counter("pkts").inc(42);
    g.average("lat").sample(10.0);
    g.average("lat").sample(20.0);
    auto &h = g.histogram("lat_hist");
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<std::uint64_t>(i + 1));

    std::ostringstream os;
    JsonWriter w(os);
    telemetry::writeGroupJson(w, g);

    auto v = JsonValue::parse(os.str());
    ASSERT_TRUE(v.has_value()) << os.str();
    EXPECT_DOUBLE_EQ(v->find("counters")->find("pkts")->asDouble(), 42.0);
    EXPECT_DOUBLE_EQ(
        v->find("averages")->find("lat")->find("mean")->asDouble(), 15.0);
    const JsonValue *hist = v->find("histograms")->find("lat_hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->asDouble(), 100.0);
    EXPECT_DOUBLE_EQ(hist->find("max")->asDouble(), 100.0);
    EXPECT_GT(hist->find("p99")->asDouble(),
              hist->find("p50")->asDouble());
    // Non-empty buckets serialise as [lo, hi, count] triples that add
    // back up to the total count.
    double total = 0;
    for (const auto &b : hist->find("buckets")->elements())
        total += b.at(2)->asDouble();
    EXPECT_DOUBLE_EQ(total, 100.0);
}

TEST(Json, IntervalRoundTrip)
{
    stats::Group g("net");
    auto &c = g.counter("pkts");
    IntervalSampler s(10);
    s.addGroup(&g);
    for (Cycle now = 0; now < 35; ++now) {
        c.inc();
        s.onCycle(now);
    }
    std::ostringstream os;
    JsonWriter w(os);
    telemetry::writeIntervalJson(w, s);

    auto v = JsonValue::parse(os.str());
    ASSERT_TRUE(v.has_value()) << os.str();
    EXPECT_DOUBLE_EQ(v->find("period")->asDouble(), 10.0);
    ASSERT_EQ(v->find("snapshots")->size(), 3u);
    const JsonValue *last = v->find("snapshots")->at(2);
    EXPECT_DOUBLE_EQ(last->find("cycle")->asDouble(), 29.0);
    EXPECT_DOUBLE_EQ(last->find("values")->find("net.pkts")->asDouble(),
                     30.0);
}

} // namespace
} // namespace stacknoc
